package replay

// Remote interval jobs: the wire form of one checkpoint-partitioned
// replay interval. The job payload carries only (index, total) — a
// fleet worker holding the same bundle re-derives the interval list
// with partitionCuts, which is a pure function of the Input, so both
// sides agree on what interval k means without shipping log slices.
// The result payload carries the per-interval counters, plus the full
// final state for the last interval only: stitch reads final-state
// fields from the last interval alone, so interior intervals stay a
// few bytes on the wire no matter how large the memory image is.

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/wire"
)

// encodeIntervalJob packs one interval job's parameters.
func encodeIntervalJob(index, total int) []byte {
	var a wire.Appender
	a.Uvarint(uint64(index))
	a.Uvarint(uint64(total))
	return a.Buf
}

// decodeIntervalJob unpacks an interval job's parameters.
func decodeIntervalJob(data []byte) (index, total int, err error) {
	c := wire.CursorOf(data)
	i, err := c.Uvarint()
	if err != nil {
		return 0, 0, fmt.Errorf("replay: interval job index: %w", err)
	}
	n, err := c.Uvarint()
	if err != nil {
		return 0, 0, fmt.Errorf("replay: interval job total: %w", err)
	}
	if err := c.Done(); err != nil {
		return 0, 0, fmt.Errorf("replay: interval job trailer: %w", err)
	}
	if n == 0 || n > 1<<20 || i >= n {
		return 0, 0, fmt.Errorf("replay: interval job %d of %d out of range", i, n)
	}
	return int(i), int(n), nil
}

// encodeIntervalResult packs one interval's replay result. final marks
// the recording's last interval, whose full end state (memory image,
// contexts, output) the stitcher needs; interior intervals were already
// validated against their boundary checkpoint on the worker, so only
// their counters travel.
func encodeIntervalResult(r *Result, final bool) []byte {
	var a wire.Appender
	a.Uvarint(r.Steps)
	a.Uvarint(r.ChunksExecuted)
	a.Uvarint(r.InputsApplied)
	a.Bool(final)
	if !final {
		return a.Buf
	}
	a.U64(r.MemChecksum)
	a.Blob(r.Output)
	a.Uvarint(uint64(len(r.FinalContexts)))
	for _, ctx := range r.FinalContexts {
		appendContext(&a, ctx)
	}
	a.Uvarint(uint64(len(r.RetiredPerThread)))
	for _, n := range r.RetiredPerThread {
		a.Uvarint(n)
	}
	if r.Truncation != nil {
		a.Bool(true)
		a.Uvarint(uint64(len(r.Truncation.Threads)))
		for _, t := range r.Truncation.Threads {
			a.Int(t)
		}
	} else {
		a.Bool(false)
	}
	if r.FinalMem != nil {
		a.Bool(true)
		size := r.FinalMem.Size()
		a.Uvarint(size)
		wire.AppendBlock(&a, r.FinalMem.LoadBytes(0, size))
	} else {
		a.Bool(false)
	}
	return a.Buf
}

// decodeIntervalResult unpacks one interval's replay result, validating
// that the payload's final flag matches what the dispatching side
// expects for this interval index.
func decodeIntervalResult(data []byte, final bool) (*Result, error) {
	r := &Result{}
	c := wire.CursorOf(data)
	fail := func(what string, err error) (*Result, error) {
		return nil, fmt.Errorf("replay: interval result %s: %w", what, err)
	}
	var err error
	if r.Steps, err = c.Uvarint(); err != nil {
		return fail("steps", err)
	}
	if r.ChunksExecuted, err = c.Uvarint(); err != nil {
		return fail("chunks", err)
	}
	if r.InputsApplied, err = c.Uvarint(); err != nil {
		return fail("inputs", err)
	}
	flag, err := c.Byte()
	if err != nil {
		return fail("final flag", err)
	}
	if (flag != 0) != final {
		return nil, fmt.Errorf("replay: interval result final flag %v, dispatcher expected %v", flag != 0, final)
	}
	if !final {
		if err := c.Done(); err != nil {
			return fail("trailer", err)
		}
		return r, nil
	}
	if r.MemChecksum, err = c.U64(); err != nil {
		return fail("mem checksum", err)
	}
	out, err := c.Blob()
	if err != nil {
		return fail("output", err)
	}
	r.Output = out
	nctx, err := c.Uvarint()
	if err != nil || nctx > 1<<16 {
		return fail("context count", errOr(err, nctx))
	}
	for i := 0; i < int(nctx); i++ {
		ctx, err := decodeContext(&c)
		if err != nil {
			return fail("context", err)
		}
		r.FinalContexts = append(r.FinalContexts, ctx)
	}
	nret, err := c.Uvarint()
	if err != nil || nret > 1<<16 {
		return fail("retired count", errOr(err, nret))
	}
	for i := 0; i < int(nret); i++ {
		n, err := c.Uvarint()
		if err != nil {
			return fail("retired", err)
		}
		r.RetiredPerThread = append(r.RetiredPerThread, n)
	}
	hasTrunc, err := c.Byte()
	if err != nil {
		return fail("truncation flag", err)
	}
	if hasTrunc != 0 {
		nt, err := c.Uvarint()
		if err != nil || nt > 1<<16 {
			return fail("truncation count", errOr(err, nt))
		}
		tr := &TruncatedReplay{}
		for i := 0; i < int(nt); i++ {
			v, err := c.Uvarint()
			if err != nil {
				return fail("truncated thread", err)
			}
			tr.Threads = append(tr.Threads, int(v))
		}
		r.Truncation = tr
	}
	hasMem, err := c.Byte()
	if err != nil {
		return fail("memory flag", err)
	}
	if hasMem != 0 {
		size, err := c.Uvarint()
		if err != nil || size > 1<<32 {
			return fail("memory size", errOr(err, size))
		}
		img, _, err := wire.DecodeBlock(&c, nil)
		if err != nil {
			return fail("memory image", err)
		}
		if uint64(len(img)) != size {
			return nil, fmt.Errorf("replay: interval result memory image %d bytes, declares %d", len(img), size)
		}
		m := mem.New(size)
		m.StoreBytes(0, img)
		r.FinalMem = m
	}
	if err := c.Done(); err != nil {
		return fail("trailer", err)
	}
	return r, nil
}

// errOr turns a count-overflow (nil err but absurd value) into an error.
func errOr(err error, v uint64) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("count %d out of range", v)
}

// appendContext / decodeContext serialize one architectural context for
// interval results (the bundle codec in core has its own copy; replay
// cannot import core).
func appendContext(a *wire.Appender, ctx isa.Context) {
	for _, r := range ctx.Regs {
		a.Uvarint(r)
	}
	a.Int(ctx.PC)
	a.Uvarint(ctx.Retired)
	var flags byte
	if ctx.Halted {
		flags |= 1
	}
	if ctx.RepActive {
		flags |= 2
	}
	a.Byte(flags)
	a.Uvarint(ctx.RepDone)
}

func decodeContext(c *wire.Cursor) (isa.Context, error) {
	var ctx isa.Context
	for i := range ctx.Regs {
		r, err := c.Uvarint()
		if err != nil {
			return ctx, err
		}
		ctx.Regs[i] = r
	}
	pc, err := c.Uvarint()
	if err != nil {
		return ctx, err
	}
	ctx.PC = int(pc)
	if ctx.Retired, err = c.Uvarint(); err != nil {
		return ctx, err
	}
	flags, err := c.Byte()
	if err != nil {
		return ctx, err
	}
	if flags > 3 {
		return ctx, fmt.Errorf("context flags %#x", flags)
	}
	ctx.Halted = flags&1 != 0
	ctx.RepActive = flags&2 != 0
	if ctx.RepDone, err = c.Uvarint(); err != nil {
		return ctx, err
	}
	return ctx, nil
}

// IntervalRunner caches one Input's interval partition for repeated
// interval jobs: a fleet worker serves many jobs against the same
// bundle, and re-deriving the partition per job would cost O(intervals)
// of slicing for every job. The cached list is identical to what the
// dispatching side computed (partitionCuts is a pure function of the
// Input), so both sides agree on what interval k means. Safe for
// concurrent Exec calls: the intervals are read-only and each replay
// snapshots its start state.
type IntervalRunner struct {
	in  Input
	ivs []*interval
}

// NewIntervalRunner partitions the input once for repeated job
// execution.
func NewIntervalRunner(in Input) *IntervalRunner {
	in.Exec = nil
	return &IntervalRunner{in: in, ivs: partitionCuts(in)}
}

// Exec is the worker side of a JobReplayInterval: decode the job
// parameters, replay the one interval the payload names, and encode its
// result. The total in the payload cross-checks that both sides see the
// same recording.
func (ir *IntervalRunner) Exec(payload []byte) ([]byte, error) {
	index, total, err := decodeIntervalJob(payload)
	if err != nil {
		return nil, err
	}
	if len(ir.ivs) != total {
		return nil, fmt.Errorf("replay: job expects %d intervals, bundle partitions into %d (bundle mismatch?)",
			total, len(ir.ivs))
	}
	r, err := runInterval(ir.in, ir.ivs[index])
	if err != nil {
		return nil, err
	}
	return encodeIntervalResult(r, index == total-1), nil
}

// ExecIntervalJob runs one interval job without a cached partition —
// the one-shot form of IntervalRunner for callers that execute a single
// job per bundle.
func ExecIntervalJob(in Input, payload []byte) ([]byte, error) {
	return NewIntervalRunner(in).Exec(payload)
}
