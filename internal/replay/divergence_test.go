package replay

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
)

// progPlain: three instructions then halt (no kernel crossings).
func progPlain() *isa.Program {
	b := isa.NewBuilder("plain")
	b.Li(isa.R3, 1)
	b.Li(isa.R4, 2)
	b.Add(isa.R5, isa.R3, isa.R4)
	b.Halt()
	return b.Build(64, 1, nil)
}

// progRep: three setup instructions, a 4-iteration REP fill, then halt.
func progRep() *isa.Program {
	b := isa.NewBuilder("rep")
	b.Li(isa.R3, 64)
	b.Li(isa.R4, 7)
	b.Li(isa.R5, 4)
	b.RepStos(isa.R3, isa.R4, isa.R5)
	b.Halt()
	return b.Build(256, 1, nil)
}

func chunkLog(entries ...chunk.Entry) []*chunk.Log {
	l := &chunk.Log{Thread: 0}
	for _, e := range entries {
		l.Append(e)
	}
	return []*chunk.Log{l}
}

// TestDivergencePathsReturnDivergenceError is the audit of every
// divergence exit in the replayer: each crafted log/program mismatch must
// surface as a *DivergenceError (via errors.As) carrying the thread and
// the chunk-log index at which replay detected the departure — never a
// bare error, never a silent success.
func TestDivergencePathsReturnDivergenceError(t *testing.T) {
	sysRec := func(ts uint64, sysno uint64) capo.Record {
		return capo.Record{Kind: capo.KindSyscall, Thread: 0, TS: ts, Sysno: sysno}
	}
	cases := []struct {
		name       string
		in         Input
		wantReason string
		wantChunk  int
	}{
		{
			name: "syscall-inside-chunk",
			in: Input{Prog: simpleProg(), Threads: 1,
				ChunkLogs: chunkLog(chunk.Entry{Size: 6, TS: 0, Reason: chunk.ReasonFlush}),
				InputLog:  &capo.InputLog{}},
			wantReason: "unexpected syscall inside chunk",
			wantChunk:  0,
		},
		{
			name: "halted-mid-chunk",
			in: Input{Prog: progPlain(), Threads: 1,
				ChunkLogs: chunkLog(chunk.Entry{Size: 10, TS: 0, Reason: chunk.ReasonFlush}),
				InputLog:  &capo.InputLog{}},
			wantReason: "halted mid-chunk",
			wantChunk:  0,
		},
		{
			name: "overshot-chunk-boundary",
			in: Input{Prog: simpleProg(), Threads: 1,
				ChunkLogs: chunkLog(
					chunk.Entry{Size: 4, TS: 0, Reason: chunk.ReasonSyscall},
					chunk.Entry{Size: 0, TS: 2, Reason: chunk.ReasonFlush}),
				InputLog: &capo.InputLog{Records: []capo.Record{sysRec(1, capo.SysGetTID)}}},
			wantReason: "overshot chunk boundary",
			wantChunk:  1,
		},
		{
			name: "rep-residue-overshoot",
			in: Input{Prog: progRep(), Threads: 1,
				ChunkLogs: chunkLog(
					chunk.Entry{Size: 3, TS: 0, Reason: chunk.ReasonConflictRAW, RepResidue: 2},
					chunk.Entry{Size: 0, TS: 1, Reason: chunk.ReasonFlush, RepResidue: 1}),
				InputLog: &capo.InputLog{}},
			wantReason: "REP residue overshoot",
			wantChunk:  1,
		},
		{
			name: "rep-residue-mismatch-hw-counting",
			in: Input{Prog: progRep(), Threads: 1, CountRepIterations: true,
				ChunkLogs: chunkLog(chunk.Entry{Size: 5, TS: 0, Reason: chunk.ReasonConflictRAW, RepResidue: 3}),
				InputLog:  &capo.InputLog{}},
			wantReason: "REP residue mismatch at unit boundary",
			wantChunk:  0,
		},
		{
			name: "unknown-record-kind",
			in: Input{Prog: progPlain(), Threads: 1,
				ChunkLogs: chunkLog(chunk.Entry{Size: 4, TS: 1, Reason: chunk.ReasonFlush}),
				InputLog:  &capo.InputLog{Records: []capo.Record{{Kind: 9, Thread: 0, TS: 0}}}},
			wantReason: "unknown input record kind",
			wantChunk:  0,
		},
		{
			name: "signal-position-mismatch",
			in: Input{Prog: progPlain(), Threads: 1,
				ChunkLogs: chunkLog(chunk.Entry{Size: 4, TS: 1, Reason: chunk.ReasonFlush}),
				InputLog: &capo.InputLog{Records: []capo.Record{
					{Kind: capo.KindSignal, Thread: 0, TS: 0, Retired: 99}}}},
			wantReason: "signal position mismatch",
			wantChunk:  0,
		},
		{
			name: "signal-rep-residue-mismatch",
			in: Input{Prog: progPlain(), Threads: 1,
				ChunkLogs: chunkLog(chunk.Entry{Size: 4, TS: 1, Reason: chunk.ReasonFlush}),
				InputLog: &capo.InputLog{Records: []capo.Record{
					{Kind: capo.KindSignal, Thread: 0, TS: 0, Retired: 0, RepDone: 5}}}},
			wantReason: "signal REP residue mismatch",
			wantChunk:  0,
		},
		{
			name: "signal-without-handler",
			in: Input{Prog: progPlain(), Threads: 1,
				ChunkLogs: chunkLog(chunk.Entry{Size: 4, TS: 1, Reason: chunk.ReasonFlush}),
				InputLog: &capo.InputLog{Records: []capo.Record{
					{Kind: capo.KindSignal, Thread: 0, TS: 0, Retired: 0, RepDone: 0}}}},
			wantReason: "no handler registered",
			wantChunk:  0,
		},
		{
			name: "expected-syscall-trap",
			in: Input{Prog: progPlain(), Threads: 1,
				ChunkLogs: chunkLog(chunk.Entry{Size: 4, TS: 1, Reason: chunk.ReasonFlush}),
				InputLog:  &capo.InputLog{Records: []capo.Record{sysRec(0, capo.SysGetTID)}}},
			wantReason: "expected syscall trap",
			wantChunk:  0,
		},
		{
			name: "syscall-number-mismatch",
			in: Input{Prog: simpleProg(), Threads: 1,
				ChunkLogs: chunkLog(
					chunk.Entry{Size: 4, TS: 0, Reason: chunk.ReasonSyscall},
					chunk.Entry{Size: 2, TS: 2, Reason: chunk.ReasonFlush}),
				InputLog: &capo.InputLog{Records: []capo.Record{sysRec(1, capo.SysWrite)}}},
			wantReason: "syscall number mismatch",
			wantChunk:  1,
		},
		{
			name: "log-exhausted-not-halted",
			in: Input{Prog: progPlain(), Threads: 1,
				ChunkLogs: chunkLog(chunk.Entry{Size: 2, TS: 0, Reason: chunk.ReasonFlush}),
				InputLog:  &capo.InputLog{}},
			wantReason: "log exhausted",
			wantChunk:  1,
		},
		{
			name: "step-budget-exhausted",
			in: Input{Prog: progPlain(), Threads: 1, MaxSteps: 2,
				ChunkLogs: chunkLog(chunk.Entry{Size: 4, TS: 0, Reason: chunk.ReasonFlush}),
				InputLog:  &capo.InputLog{}},
			wantReason: "step budget exhausted",
			wantChunk:  0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.in)
			if err == nil {
				t.Fatal("replay succeeded; want divergence")
			}
			var de *DivergenceError
			if !errors.As(err, &de) {
				t.Fatalf("error %v (%T) is not a *DivergenceError", err, err)
			}
			if de.Thread != 0 {
				t.Errorf("Thread = %d, want 0", de.Thread)
			}
			if de.Chunk != tc.wantChunk {
				t.Errorf("Chunk = %d, want %d", de.Chunk, tc.wantChunk)
			}
			if !strings.Contains(de.Reason, tc.wantReason) {
				t.Errorf("Reason %q does not contain %q", de.Reason, tc.wantReason)
			}
		})
	}
}

// TestScheduleOfMatchesRunOrder pins that ScheduleOf predicts exactly the
// item order Run consumes, on a two-thread interleaving with a TS tie
// (resolved toward the lower thread ID).
func TestScheduleOfMatchesRunOrder(t *testing.T) {
	l0 := &chunk.Log{Thread: 0}
	l0.Append(chunk.Entry{Size: 1, TS: 5, Reason: chunk.ReasonFlush})
	l1 := &chunk.Log{Thread: 1}
	l1.Append(chunk.Entry{Size: 2, TS: 5, Reason: chunk.ReasonFlush})
	in := Input{Threads: 2, ChunkLogs: []*chunk.Log{l0, l1}, InputLog: &capo.InputLog{
		Records: []capo.Record{{Kind: capo.KindSyscall, Thread: 1, TS: 3, Sysno: capo.SysGetTID}},
	}}
	sched := ScheduleOf(in)
	if len(sched) != 3 {
		t.Fatalf("schedule has %d items, want 3", len(sched))
	}
	if sched[0].IsChunk || sched[0].Thread != 1 {
		t.Errorf("item 0 = %+v, want thread 1 input record (TS 3)", sched[0])
	}
	if !sched[1].IsChunk || sched[1].Thread != 0 {
		t.Errorf("item 1 = %+v, want thread 0 chunk (TS tie resolved to lower thread)", sched[1])
	}
	if !sched[2].IsChunk || sched[2].Thread != 1 {
		t.Errorf("item 2 = %+v, want thread 1 chunk", sched[2])
	}
	if ScheduleOf(Input{Threads: 0}) != nil {
		t.Error("ScheduleOf of inconsistent input should be nil")
	}
}
