package replay

import (
	"fmt"

	"repro/internal/isa"
)

// TraceEntry is one executed instruction (or REP iteration) of the
// traced thread.
type TraceEntry struct {
	// PC is the instruction's index; Instr its disassembly.
	PC    int
	Instr string
	// Kind distinguishes whole retirements from REP iterations and
	// syscall completions.
	Kind isa.StepKind
	// Retired is the thread's architectural position after the step.
	Retired uint64
}

// Trace replays the recording and captures thread tid's instruction
// stream over the retired-count window [from, to). Like every replay
// operation it is deterministic: the same recording yields the same
// trace on every call — an execution history that can be grepped.
func Trace(in Input, tid int, from, to uint64) (entries []TraceEntry, err error) {
	defer recoverFault(&err)
	if tid < 0 || tid >= in.Threads {
		return nil, fmt.Errorf("replay: trace thread %d out of range", tid)
	}
	if to < from {
		return nil, fmt.Errorf("replay: empty trace window [%d, %d)", from, to)
	}
	r := &replayer{in: in, bp: &Breakpoint{Thread: tid, Retired: to}}
	if in.StackWordsPerThread == 0 {
		r.in.StackWordsPerThread = 1024
	}
	var out []TraceEntry
	r.stepHook = func(t *threadState, pcBefore int, kind isa.StepKind) {
		if t.id != tid || t.core.Retired() <= from {
			return
		}
		instr := ""
		if pcBefore >= 0 && pcBefore < len(in.Prog.Code) {
			instr = in.Prog.Code[pcBefore].String()
		}
		out = append(out, TraceEntry{
			PC: pcBefore, Instr: instr, Kind: kind, Retired: t.core.Retired(),
		})
	}
	r.setup()
	err = r.loop()
	if err != nil && err != errPaused {
		return nil, err
	}
	entries = out
	return entries, nil
}
