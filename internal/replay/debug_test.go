package replay_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

func TestRunUntilPausesExactly(t *testing.T) {
	spec, _ := workload.ByName("counter")
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Threads = 4
	cfg.Seed = 5
	b, err := core.Record(spec.Build(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build(4)
	const target = 500
	ps, err := core.ReplayUntil(prog, b, 2, target)
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Hit {
		t.Fatal("breakpoint not hit")
	}
	if got := ps.Contexts[2].Retired; got != target {
		t.Errorf("paused at %d, want %d", got, target)
	}
	// Deterministic: pausing again gives the identical state.
	ps2, err := core.ReplayUntil(prog, b, 2, target)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Mem.Checksum() != ps2.Mem.Checksum() {
		t.Error("pause states differ across runs")
	}
	for tid := range ps.Contexts {
		if ps.Contexts[tid] != ps2.Contexts[tid] {
			t.Errorf("thread %d context differs across pauses", tid)
		}
	}
}

func TestRunUntilPastEndReturnsFinalState(t *testing.T) {
	spec, _ := workload.ByName("counter")
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Threads = 2
	b, err := core.Record(spec.Build(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build(2)
	ps, err := core.ReplayUntil(prog, b, 0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Hit {
		t.Error("impossible breakpoint reported as hit")
	}
	if ps.Contexts[0].Retired != b.RetiredPerThread[0] {
		t.Errorf("final retired = %d, want %d", ps.Contexts[0].Retired, b.RetiredPerThread[0])
	}
	if ps.Mem.Checksum() != b.MemChecksum {
		t.Error("running to the end did not reach the recorded final memory")
	}
}

func TestRunUntilBadThread(t *testing.T) {
	spec, _ := workload.ByName("counter")
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Threads = 2
	b, err := core.Record(spec.Build(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.ReplayUntil(spec.Build(2), b, 9, 10); err == nil {
		t.Error("out-of-range thread accepted")
	}
}

func TestRunUntilOnTailBundle(t *testing.T) {
	spec, _ := workload.ByName("fft")
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Threads = 4
	cfg.Seed = 5
	cfg.CheckpointEveryInstrs = 100_000
	b, err := core.Record(spec.Build(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.RecordStats.Checkpoints == 0 {
		t.Skip("no checkpoint taken")
	}
	tail, err := core.Tail(b)
	if err != nil {
		t.Fatal(err)
	}
	startRetired := tail.Checkpoint.Contexts[1].Retired
	target := startRetired + 100
	if target > b.RetiredPerThread[1] {
		t.Skip("thread 1 retires too little after the checkpoint")
	}
	ps, err := core.ReplayUntil(spec.Build(4), tail, 1, target)
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Hit || ps.Contexts[1].Retired != target {
		t.Errorf("tail pause at %d (hit=%v), want %d", ps.Contexts[1].Retired, ps.Hit, target)
	}
	// Breakpoints before the checkpoint are rejected.
	if startRetired > 0 {
		if _, err := core.ReplayUntil(spec.Build(4), tail, 1, startRetired-1); err == nil {
			t.Error("pre-checkpoint breakpoint accepted on tail bundle")
		}
	}
}

func TestRunUntilMatchesFullReplayPrefix(t *testing.T) {
	// The paused memory at thread t position n must match what a second
	// pause at the same position sees even via a different thread's
	// breakpoint... instead we check consistency with full replay: run
	// to a breakpoint at the very end of thread 0 and compare to the
	// full replay's final state for that thread.
	spec, _ := workload.ByName("water")
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Threads = 4
	b, err := core.Record(spec.Build(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build(4)
	ps, err := core.ReplayUntil(prog, b, 0, b.RetiredPerThread[0])
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Hit {
		t.Fatal("end-of-thread breakpoint missed")
	}
	got := ps.Contexts[0]
	want := b.FinalContexts[0]
	if got.Retired != want.Retired || got.PC != want.PC {
		t.Errorf("thread 0 at breakpoint: pc=%d retired=%d, recorded final pc=%d retired=%d",
			got.PC, got.Retired, want.PC, want.Retired)
	}
	for r := 0; r < len(got.Regs); r++ {
		if got.Regs[r] != want.Regs[r] {
			t.Errorf("r%d = %#x, recorded final %#x", r, got.Regs[r], want.Regs[r])
		}
	}
}

func TestTraceWindow(t *testing.T) {
	spec, _ := workload.ByName("counter")
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Threads = 4
	cfg.Seed = 5
	b, err := core.Record(spec.Build(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build(4)
	entries, err := core.Trace(prog, b, 1, 100, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 20 {
		t.Fatalf("trace returned %d entries, want 20", len(entries))
	}
	for i, e := range entries {
		if e.Retired != uint64(101+i) {
			t.Fatalf("entry %d at retired %d, want %d", i, e.Retired, 101+i)
		}
		if e.Instr == "" {
			t.Fatalf("entry %d has no disassembly", i)
		}
	}
	// Deterministic.
	again, err := core.Trace(prog, b, 1, 100, 120)
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		if entries[i] != again[i] {
			t.Fatalf("trace differs at %d", i)
		}
	}
}

func TestTraceValidation(t *testing.T) {
	spec, _ := workload.ByName("counter")
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Threads = 2
	b, err := core.Record(spec.Build(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build(2)
	if _, err := core.Trace(prog, b, 9, 0, 10); err == nil {
		t.Error("bad thread accepted")
	}
	if _, err := core.Trace(prog, b, 0, 10, 5); err == nil {
		t.Error("inverted window accepted")
	}
	// Window past end of execution: returns what exists, no error.
	entries, err := core.Trace(prog, b, 0, b.RetiredPerThread[0]-5, b.RetiredPerThread[0]+100)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Errorf("tail trace = %d entries, want 5", len(entries))
	}
}

func TestTraceCapturesSyscallSteps(t *testing.T) {
	spec, _ := workload.ByName("ioheavy")
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Threads = 2
	b, err := core.Record(spec.Build(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := spec.Build(2)
	entries, err := core.Trace(prog, b, 0, 0, b.RetiredPerThread[0])
	if err != nil {
		t.Fatal(err)
	}
	sawSyscall := false
	for _, e := range entries {
		if e.Instr == "syscall" {
			sawSyscall = true
		}
	}
	if !sawSyscall {
		t.Error("trace missed syscall instructions")
	}
}
