package replay

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
)

// simpleProg: three instructions then a syscall then halt.
func simpleProg() *isa.Program {
	b := isa.NewBuilder("simple")
	b.Li(isa.R3, 1)
	b.Li(isa.R4, 2)
	b.Add(isa.R5, isa.R3, isa.R4)
	b.Li(isa.RRet, int64(capo.SysGetTID))
	b.Syscall()
	b.Halt()
	return b.Build(64, 1, nil)
}

// logsFor builds a minimal consistent recording for simpleProg:
// chunk(4 instrs, syscall) -> input record -> chunk(2 instrs, flush).
func logsFor() ([]*chunk.Log, *capo.InputLog) {
	cl := &chunk.Log{Thread: 0}
	cl.Append(chunk.Entry{Size: 4, TS: 0, Reason: chunk.ReasonSyscall})
	cl.Append(chunk.Entry{Size: 2, TS: 2, Reason: chunk.ReasonFlush})
	il := &capo.InputLog{}
	il.Append(capo.Record{Kind: capo.KindSyscall, Thread: 0, Seq: 0, TS: 1,
		Sysno: capo.SysGetTID, Ret: 0})
	return []*chunk.Log{cl}, il
}

func TestMinimalReplay(t *testing.T) {
	logs, il := logsFor()
	rr, err := Run(Input{Prog: simpleProg(), Threads: 1, ChunkLogs: logs, InputLog: il})
	if err != nil {
		t.Fatal(err)
	}
	if rr.ChunksExecuted != 2 || rr.InputsApplied != 1 {
		t.Errorf("items: %d chunks, %d inputs", rr.ChunksExecuted, rr.InputsApplied)
	}
	if rr.RetiredPerThread[0] != 6 {
		t.Errorf("retired = %d, want 6", rr.RetiredPerThread[0])
	}
	if rr.FinalContexts[0].Regs[isa.R5] != 3 {
		t.Errorf("r5 = %d, want 3", rr.FinalContexts[0].Regs[isa.R5])
	}
	if rr.FinalMem == nil {
		t.Error("FinalMem not exposed")
	}
}

func TestInconsistentInputRejected(t *testing.T) {
	logs, il := logsFor()
	if _, err := Run(Input{Prog: simpleProg(), Threads: 2, ChunkLogs: logs, InputLog: il}); err == nil {
		t.Error("thread-count mismatch accepted")
	}
	if _, err := Run(Input{Prog: simpleProg(), Threads: 0, ChunkLogs: nil, InputLog: il}); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestDivergenceWrongSysno(t *testing.T) {
	logs, il := logsFor()
	il.Records[0].Sysno = capo.SysRandom // program executes SysGetTID
	_, err := Run(Input{Prog: simpleProg(), Threads: 1, ChunkLogs: logs, InputLog: il})
	var dv *DivergenceError
	if !errors.As(err, &dv) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if !strings.Contains(dv.Error(), "syscall number mismatch") {
		t.Errorf("unexpected reason: %v", dv)
	}
	if dv.Thread != 0 {
		t.Errorf("divergence thread = %d", dv.Thread)
	}
}

func TestDivergenceChunkTooLarge(t *testing.T) {
	logs, il := logsFor()
	// First chunk claims 5 instructions but the syscall traps after 4.
	logs[0].Entries[0].Size = 5
	_, err := Run(Input{Prog: simpleProg(), Threads: 1, ChunkLogs: logs, InputLog: il})
	var dv *DivergenceError
	if !errors.As(err, &dv) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if !strings.Contains(dv.Reason, "syscall inside chunk") {
		t.Errorf("unexpected reason: %v", dv)
	}
}

func TestDivergenceHaltMidChunk(t *testing.T) {
	logs, il := logsFor()
	logs[0].Entries[1].Size = 10 // program halts after 2 more
	_, err := Run(Input{Prog: simpleProg(), Threads: 1, ChunkLogs: logs, InputLog: il})
	var dv *DivergenceError
	if !errors.As(err, &dv) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if !strings.Contains(dv.Reason, "halted mid-chunk") {
		t.Errorf("unexpected reason: %v", dv)
	}
}

func TestDivergenceLogExhaustedEarly(t *testing.T) {
	logs, il := logsFor()
	logs[0].Entries = logs[0].Entries[:1] // drop the final chunk
	_, err := Run(Input{Prog: simpleProg(), Threads: 1, ChunkLogs: logs, InputLog: il})
	var dv *DivergenceError
	if !errors.As(err, &dv) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if !strings.Contains(dv.Reason, "neither halted nor exited") {
		t.Errorf("unexpected reason: %v", dv)
	}
}

func TestDivergenceMissingInputRecord(t *testing.T) {
	logs, _ := logsFor()
	_, err := Run(Input{Prog: simpleProg(), Threads: 1, ChunkLogs: logs, InputLog: &capo.InputLog{}})
	var dv *DivergenceError
	if !errors.As(err, &dv) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
}

func TestDivergenceSignalWithoutHandler(t *testing.T) {
	cl := &chunk.Log{Thread: 0}
	cl.Append(chunk.Entry{Size: 2, TS: 0, Reason: chunk.ReasonTrap})
	il := &capo.InputLog{}
	il.Append(capo.Record{Kind: capo.KindSignal, Thread: 0, Seq: 0, TS: 1,
		Signo: 1, Retired: 2})
	_, err := Run(Input{Prog: simpleProg(), Threads: 1,
		ChunkLogs: []*chunk.Log{cl}, InputLog: il})
	var dv *DivergenceError
	if !errors.As(err, &dv) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if !strings.Contains(dv.Reason, "no handler") {
		t.Errorf("unexpected reason: %v", dv)
	}
}

func TestDivergenceSignalPositionMismatch(t *testing.T) {
	cl := &chunk.Log{Thread: 0}
	cl.Append(chunk.Entry{Size: 2, TS: 0, Reason: chunk.ReasonTrap})
	il := &capo.InputLog{}
	il.Append(capo.Record{Kind: capo.KindSignal, Thread: 0, Seq: 0, TS: 1,
		Signo: 1, Retired: 99}) // recorded position doesn't match
	_, err := Run(Input{Prog: simpleProg(), Threads: 1,
		ChunkLogs: []*chunk.Log{cl}, InputLog: il})
	var dv *DivergenceError
	if !errors.As(err, &dv) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if !strings.Contains(dv.Reason, "signal position mismatch") {
		t.Errorf("unexpected reason: %v", dv)
	}
}

func TestUnknownRecordKindDiverges(t *testing.T) {
	cl := &chunk.Log{Thread: 0}
	cl.Append(chunk.Entry{Size: 4, TS: 0, Reason: chunk.ReasonSyscall})
	il := &capo.InputLog{}
	il.Append(capo.Record{Kind: capo.RecordKind(99), Thread: 0, TS: 1})
	_, err := Run(Input{Prog: simpleProg(), Threads: 1,
		ChunkLogs: []*chunk.Log{cl}, InputLog: il})
	var dv *DivergenceError
	if !errors.As(err, &dv) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
}

func TestReadInjectsLoggedData(t *testing.T) {
	b := isa.NewBuilder("reader")
	b.Li(isa.RRet, int64(capo.SysRead))
	b.Li(isa.R11, 0)
	b.Li(isa.R12, 64) // buffer address
	b.Li(isa.R13, 8)
	b.Syscall()
	b.Ld(isa.R3, isa.R0, 64)
	b.Halt()
	prog := b.Build(256, 1, nil)

	cl := &chunk.Log{Thread: 0}
	cl.Append(chunk.Entry{Size: 4, TS: 0, Reason: chunk.ReasonSyscall})
	cl.Append(chunk.Entry{Size: 3, TS: 2, Reason: chunk.ReasonFlush})
	il := &capo.InputLog{}
	il.Append(capo.Record{Kind: capo.KindSyscall, Thread: 0, Seq: 0, TS: 1,
		Sysno: capo.SysRead, Ret: 8, Addr: 64,
		Data: []byte{0xEF, 0xBE, 0xAD, 0xDE, 0, 0, 0, 0}})
	rr, err := Run(Input{Prog: prog, Threads: 1, ChunkLogs: []*chunk.Log{cl}, InputLog: il})
	if err != nil {
		t.Fatal(err)
	}
	if got := rr.FinalContexts[0].Regs[isa.R3]; got != 0xDEADBEEF {
		t.Errorf("loaded %#x, want 0xDEADBEEF (logged data not injected)", got)
	}
}

func TestWriteRegeneratesOutput(t *testing.T) {
	b := isa.NewBuilder("writer")
	b.Li(isa.R3, 0x6f6c6c65) // "ello" + low byte 'h' below
	b.Muli(isa.R3, isa.R3, 256)
	b.Addi(isa.R3, isa.R3, 'h')
	b.St(isa.R0, 64, isa.R3)
	b.Li(isa.RRet, int64(capo.SysWrite))
	b.Li(isa.R11, 1)
	b.Li(isa.R12, 64)
	b.Li(isa.R13, 5)
	b.Syscall()
	b.Halt()
	prog := b.Build(256, 1, nil)

	cl := &chunk.Log{Thread: 0}
	cl.Append(chunk.Entry{Size: 8, TS: 0, Reason: chunk.ReasonSyscall})
	cl.Append(chunk.Entry{Size: 2, TS: 2, Reason: chunk.ReasonFlush})
	il := &capo.InputLog{}
	il.Append(capo.Record{Kind: capo.KindSyscall, Thread: 0, Seq: 0, TS: 1,
		Sysno: capo.SysWrite, Ret: 5})
	rr, err := Run(Input{Prog: prog, Threads: 1, ChunkLogs: []*chunk.Log{cl}, InputLog: il})
	if err != nil {
		t.Fatal(err)
	}
	if string(rr.Output) != "hello" {
		t.Errorf("output = %q, want hello", rr.Output)
	}
}

func TestItemMergeOrdersByTimestamp(t *testing.T) {
	in := Input{InputLog: &capo.InputLog{}}
	in.ChunkLogs = []*chunk.Log{{Thread: 0}}
	in.ChunkLogs[0].Append(chunk.Entry{Size: 1, TS: 0, Reason: chunk.ReasonSyscall})
	in.ChunkLogs[0].Append(chunk.Entry{Size: 1, TS: 4, Reason: chunk.ReasonFlush})
	in.InputLog.Append(capo.Record{Kind: capo.KindSyscall, Thread: 0, TS: 2})
	items := buildItems(in, 0)
	if len(items) != 3 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].kind != itemChunk || items[1].kind != itemInput || items[2].kind != itemChunk {
		t.Errorf("merge order wrong: %v %v %v", items[0].kind, items[1].kind, items[2].kind)
	}
}

func TestDivergenceErrorMessage(t *testing.T) {
	e := &DivergenceError{Thread: 3, Reason: "boom"}
	if !strings.Contains(e.Error(), "thread 3") || !strings.Contains(e.Error(), "boom") {
		t.Errorf("message = %q", e.Error())
	}
}
