package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Store is the content-addressed bundle store: every uploaded stream
// lands at objects/<hh>/<digest>.qstream where <digest> is the
// lowercase-hex SHA-256 of the rendered stream bytes and <hh> its first
// two characters. Writes go through a temp file in the same directory
// followed by an atomic rename, so a crash mid-store leaves either the
// complete bundle or nothing addressable — never a torn object. Storing
// bytes that already exist is a no-op (content addressing makes dedupe
// free), which is also what makes concurrent shards storing the same
// digest safe: both rename identical content onto the same name.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a bundle store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("ingest: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// objectPath maps a hex digest to its object file.
func (s *Store) objectPath(digest string) string {
	return filepath.Join(s.dir, "objects", digest[:2], digest+".qstream")
}

// Put stores data under its SHA-256 and returns the hex digest. existed
// reports that an identical bundle was already present (the write was
// skipped — content addressing deduplicates).
func (s *Store) Put(data []byte) (digest string, existed bool, err error) {
	sum := sha256.Sum256(data)
	digest = hex.EncodeToString(sum[:])
	path := s.objectPath(digest)
	if _, err := os.Stat(path); err == nil {
		return digest, true, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", false, fmt.Errorf("ingest: store put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+digest+".tmp-")
	if err != nil {
		return "", false, fmt.Errorf("ingest: store put: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", false, fmt.Errorf("ingest: store put: %w", err)
	}
	// The bundle must be durable before it becomes addressable: fsync the
	// file, then rename it into place.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", false, fmt.Errorf("ingest: store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", false, fmt.Errorf("ingest: store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", false, fmt.Errorf("ingest: store put: %w", err)
	}
	return digest, false, nil
}

// Get returns the bundle stored under digest.
func (s *Store) Get(digest string) ([]byte, error) {
	if len(digest) != 2*digestSize {
		return nil, fmt.Errorf("ingest: malformed digest %q", digest)
	}
	data, err := os.ReadFile(s.objectPath(digest))
	if err != nil {
		return nil, fmt.Errorf("ingest: store get: %w", err)
	}
	return data, nil
}

// List returns the digests of every stored bundle, sorted.
func (s *Store) List() ([]string, error) {
	var out []string
	root := filepath.Join(s.dir, "objects")
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		ext := filepath.Ext(name)
		if ext != ".qstream" {
			return nil // a straggler temp file from a crashed store
		}
		out = append(out, name[:len(name)-len(ext)])
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ingest: store list: %w", err)
	}
	sort.Strings(out)
	return out, nil
}
