package ingest

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/isa"
	"repro/internal/workload"
)

// verifyJob is one stored bundle awaiting verification.
type verifyJob struct {
	tenant string
	digest string
	data   []byte
}

// verifierPool drains stored uploads in the background: a single
// drainer goroutine repeatedly grabs the pending batch and fans it out
// through the dispatch layer, where each task salvages the stream,
// rebuilds the recorded program from the manifest's name, replays it
// with the checkpoint-partitioned parallel replayer, and publishes a
// verdict. The queue is an in-memory list fed by shard workers —
// enqueue never blocks the ingest data path; the measured queue depth
// is the backlog signal.
type verifierPool struct {
	workers int
	replayW int // Workers passed to core.ReplayWorkers

	mu    sync.Mutex
	cond  *sync.Cond
	queue []verifyJob
	stop  bool
	busy  int

	wg       sync.WaitGroup
	verdicts *verdictBoard
}

func newVerifierPool(workers, replayWorkers int, board *verdictBoard) *verifierPool {
	if workers < 1 {
		workers = 1
	}
	p := &verifierPool{workers: workers, replayW: replayWorkers, verdicts: board}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(1)
	go p.run()
	return p
}

// enqueue hands a stored bundle to the pool. Never blocks.
func (p *verifierPool) enqueue(j verifyJob) {
	p.mu.Lock()
	p.queue = append(p.queue, j)
	p.mu.Unlock()
	p.cond.Signal()
}

// depth returns the number of bundles waiting (not counting in-flight).
func (p *verifierPool) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// waitIdle blocks until the queue is drained and no worker is mid-job.
func (p *verifierPool) waitIdle() {
	p.mu.Lock()
	for len(p.queue) > 0 || p.busy > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// close drains the queue and stops the workers.
func (p *verifierPool) close() {
	p.mu.Lock()
	p.stop = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// run is the drainer: it owns no per-job goroutines of its own — each
// drained batch goes through the same executor abstraction as every
// other parallel path, bounded by the pool's worker count.
func (p *verifierPool) run() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.stop {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.stop {
			p.mu.Unlock()
			return
		}
		batch := p.queue
		p.queue = nil
		p.busy += len(batch)
		p.mu.Unlock()

		dispatch.Local{Workers: p.workers}.Execute(dispatch.Spec{
			Tasks: len(batch),
			Run: func(i int) error {
				p.verdicts.publish(verifyBundle(batch[i], p.replayW))
				p.mu.Lock()
				p.busy--
				p.mu.Unlock()
				p.cond.Broadcast() // wake waitIdle as well as the drainer
				return nil
			},
		})
	}
}

// programByName rebuilds the recorded program from a bundle's manifest
// name: catalogue workloads resolve through the suite, fuzz programs
// ("fuzz-<seed>") regenerate from their seed.
func programByName(name string, threads int) (*isa.Program, error) {
	return workload.ProgramByName(name, threads)
}

// verifyBundle is the whole per-bundle pipeline: salvage, rebuild,
// replay, compare. It never fails the ingest path — every outcome is a
// verdict.
func verifyBundle(j verifyJob, replayWorkers int) Verdict {
	v := Verdict{Tenant: j.tenant, Digest: j.digest}
	sv, err := core.SalvageStream(j.data)
	if err != nil {
		v.Status = StatusDiverged
		v.Detail = fmt.Sprintf("salvage: %v", err)
		return v
	}
	b := sv.Bundle
	v.Program = b.ProgramName
	v.Threads = b.Threads
	prog, err := programByName(b.ProgramName, b.Threads)
	if err != nil {
		v.Status = StatusUnverifiable
		v.Detail = err.Error()
		return v
	}
	rr, err := core.ReplayWorkers(prog, b, replayWorkers)
	if err != nil {
		v.Status = StatusDiverged
		v.Detail = fmt.Sprintf("replay: %v", err)
		return v
	}
	v.Steps = rr.Steps
	v.MemChecksum = rr.MemChecksum
	if b.Partial {
		// A torn upload (or torn recording) salvages to a validated prefix
		// with no reference final state: the prefix replayed cleanly, which
		// is all that can be asserted.
		v.Status = StatusTorn
		v.Detail = sv.Report.Reason
		return v
	}
	if err := core.Verify(b, rr); err != nil {
		v.Status = StatusDiverged
		v.Detail = err.Error()
		return v
	}
	v.Status = StatusAccepted
	return v
}
