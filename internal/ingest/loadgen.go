package ingest

import (
	"fmt"
	"sync"
	"time"
)

// LoadgenConfig shapes a fan-in load generation run: N concurrent
// uploaders replaying recorded workload bundles against one server.
type LoadgenConfig struct {
	// Addr is the target ingest server.
	Addr string
	// Uploaders is the number of concurrent uploader goroutines.
	Uploaders int
	// UploadsPer is how many uploads each uploader performs.
	UploadsPer int
	// Tenants is the tenant-ID pool; uploader i claims Tenants[i%len].
	Tenants []string
	// Streams is the pool of recorded stream images; uploader i's j-th
	// upload sends Streams[(i+j)%len].
	Streams [][]byte
	// Attempts and Backoff parameterize the shed-retry loop.
	Attempts int
	Backoff  time.Duration
	// TornEvery makes every TornEvery-th session (per uploader) a torn
	// upload: the stream is cut at half its length and the connection
	// severed without FINISH. 0 disables torn sessions.
	TornEvery int
}

// LoadgenResult aggregates a load generation run.
type LoadgenResult struct {
	Uploads    int    // acked uploads
	Duplicates int    // acks that deduplicated against the store
	Torn       int    // deliberately severed sessions
	Retries    int    // shed-and-retried attempts
	Failures   int    // uploads that exhausted their attempts
	Bytes      uint64 // payload bytes acked
	Elapsed    time.Duration
	Digests    map[string]int // acked digest -> ack count
}

// Loadgen runs the fan-in load: cfg.Uploaders goroutines, each
// performing cfg.UploadsPer uploads with retry-on-shed, a fixed share
// of them torn. It returns aggregate counts; the server's own counters
// tell the other half of the story.
func Loadgen(cfg LoadgenConfig) (*LoadgenResult, error) {
	if cfg.Uploaders < 1 || cfg.UploadsPer < 1 || len(cfg.Streams) == 0 {
		return nil, fmt.Errorf("ingest: loadgen needs uploaders, uploads and streams")
	}
	if len(cfg.Tenants) == 0 {
		cfg.Tenants = []string{"loadgen"}
	}
	if cfg.Attempts < 1 {
		cfg.Attempts = 1
	}

	res := &LoadgenResult{Digests: make(map[string]int)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Uploaders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := cfg.Tenants[i%len(cfg.Tenants)]
			for j := 0; j < cfg.UploadsPer; j++ {
				stream := cfg.Streams[(i+j)%len(cfg.Streams)]
				if cfg.TornEvery > 0 && (i*cfg.UploadsPer+j)%cfg.TornEvery == cfg.TornEvery-1 {
					if c, err := Dial(cfg.Addr); err == nil {
						c.UploadTorn(tenant, stream, len(stream)/2)
					}
					mu.Lock()
					res.Torn++
					mu.Unlock()
					continue
				}
				digest, dup, retries, err := Upload(cfg.Addr, tenant, stream, cfg.Attempts, cfg.Backoff)
				mu.Lock()
				res.Retries += retries
				if err != nil {
					res.Failures++
				} else {
					res.Uploads++
					res.Bytes += uint64(len(stream))
					res.Digests[digest]++
					if dup {
						res.Duplicates++
					}
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}
