package ingest

// The fleet job broker: the server side of the v3 job plane. Worker
// processes ATTACH with a slot count and are fed JOB frames; submitters
// ATTACH and push JOB frames whose bodies the broker never inspects —
// a job is an opaque dispatch envelope naming a content-addressed
// bundle, and the broker's whole contract is routing: every submitted
// job eventually produces exactly one RESULT back on the submitter's
// connection (first result wins when re-dispatch races a straggler).
//
// Fault model: a worker that dies, hangs, or falls off the network has
// its in-flight jobs re-queued — on connection teardown immediately, on
// a silent stall when the job's deadline lapses. Duplicated execution
// is safe because every job is a pure function of the bundle it names;
// duplicate results are discarded by ID.

import (
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// defaultJobTimeout is the in-flight deadline when Config.JobTimeout is
// zero.
const defaultJobTimeout = 30 * time.Second

// fleetConn is one attached fleet session (worker or submitter).
type fleetConn struct {
	conn  net.Conn
	wmu   sync.Mutex
	slots int             // worker concurrency; 0 for submitters
	sent  map[uint64]bool // job IDs in flight on this worker (broker.mu)
	gone  bool            // torn down (broker.mu)
}

// brokerJob is one job on the board.
type brokerJob struct {
	id     uint64 // broker-global routing ID
	body   []byte // opaque dispatch envelope
	sub    *fleetConn
	subID  uint64 // submitter's own ID, echoed in the result
	queued bool   // sitting in pending (broker.mu)
	// deadline is when the current dispatch is declared a straggler
	// (meaningful only while !queued).
	deadline time.Time
}

// broker owns the job board.
type broker struct {
	s          *Server
	jobTimeout time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	pending []uint64 // dispatch queue (FIFO of job IDs)
	jobs    map[uint64]*brokerJob
	nextID  uint64
	closed  bool

	stopScan chan struct{}
	wg       sync.WaitGroup
}

func newBroker(s *Server, jobTimeout time.Duration) *broker {
	if jobTimeout <= 0 {
		jobTimeout = defaultJobTimeout
	}
	b := &broker{
		s:          s,
		jobTimeout: jobTimeout,
		jobs:       make(map[uint64]*brokerJob),
		stopScan:   make(chan struct{}),
	}
	b.cond = sync.NewCond(&b.mu)
	b.wg.Add(1)
	go b.scan()
	return b
}

// close stops the deadline scanner and unblocks every feeder. Live
// connections are closed by the server before this runs.
func (b *broker) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	close(b.stopScan)
	b.cond.Broadcast()
	b.wg.Wait()
}

// scan re-queues in-flight jobs whose deadline lapsed: a worker that
// silently stalled (or whose death the OS has not surfaced yet) loses
// the job to a faster peer. The original dispatch is not cancelled —
// whichever result arrives first wins.
func (b *broker) scan() {
	defer b.wg.Done()
	period := b.jobTimeout / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-b.stopScan:
			return
		case now := <-t.C:
			b.mu.Lock()
			requeued := false
			for id, j := range b.jobs {
				if !j.queued && now.After(j.deadline) {
					j.queued = true
					b.pending = append(b.pending, id)
					requeued = true
				}
			}
			b.mu.Unlock()
			if requeued {
				b.cond.Broadcast()
			}
		}
	}
}

// submit puts one job on the board.
func (b *broker) submit(sub *fleetConn, subID uint64, body []byte) {
	b.mu.Lock()
	b.nextID++
	id := b.nextID
	b.jobs[id] = &brokerJob{id: id, body: body, sub: sub, subID: subID, queued: true}
	b.pending = append(b.pending, id)
	b.mu.Unlock()
	b.cond.Signal()
}

// nextJob blocks until w may be fed another job (or the broker/worker
// is done, returning nil). Marks the job in flight on w.
func (b *broker) nextJob(w *fleetConn) *brokerJob {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.closed || w.gone {
			return nil
		}
		if len(w.sent) < w.slots && len(b.pending) > 0 {
			id := b.pending[0]
			b.pending = b.pending[1:]
			j := b.jobs[id]
			if j == nil || !j.queued {
				continue // completed (or re-dispatched) while queued
			}
			j.queued = false
			j.deadline = time.Now().Add(b.jobTimeout)
			w.sent[id] = true
			return j
		}
		b.cond.Wait()
	}
}

// complete routes one finished job's result to its submitter. Stale
// results — the job already completed elsewhere, or the submitter hung
// up — are discarded.
func (b *broker) complete(w *fleetConn, id uint64, data []byte, errMsg string) {
	b.mu.Lock()
	delete(w.sent, id) // frees a slot even when the result is stale
	j := b.jobs[id]
	if j != nil {
		delete(b.jobs, id)
	}
	var sub *fleetConn
	var subID uint64
	if j != nil && !j.sub.gone {
		sub, subID = j.sub, j.subID
	}
	b.mu.Unlock()
	b.cond.Broadcast() // a slot freed; feeders may proceed
	if sub != nil {
		b.writeResult(sub, subID, errMsg, data)
	}
}

// workerGone tears down a worker: everything it had in flight goes back
// on the board.
func (b *broker) workerGone(w *fleetConn) {
	b.mu.Lock()
	w.gone = true
	for id := range w.sent {
		if j := b.jobs[id]; j != nil && !j.queued {
			j.queued = true
			b.pending = append(b.pending, id)
		}
	}
	w.sent = make(map[uint64]bool)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// submitterGone tears down a submitter: its unfinished jobs are dropped
// from the board (results would have nowhere to go).
func (b *broker) submitterGone(sub *fleetConn) {
	b.mu.Lock()
	sub.gone = true
	for id, j := range b.jobs {
		if j.sub == sub {
			delete(b.jobs, id) // pending entries skip via the nil check
		}
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// writeFleetFrame sends one frame on a fleet session under its write
// lock and the server's write deadline.
func (b *broker) writeFleetFrame(fc *fleetConn, kind FrameKind, payload []byte) bool {
	a := wire.GetAppender()
	defer wire.PutAppender(a)
	appendFrame(a, kind, payload)
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	fc.conn.SetWriteDeadline(time.Now().Add(b.s.cfg.WriteTimeout))
	if _, err := fc.conn.Write(a.Buf); err != nil {
		fc.conn.Close()
		return false
	}
	return true
}

// writeResult streams one result to a session as a chunk sequence
// sharing the routing ID. Chunks of different jobs may interleave on a
// submitter's connection; the ID keeps reassembly unambiguous.
func (b *broker) writeResult(fc *fleetConn, id uint64, errMsg string, data []byte) bool {
	for {
		n := len(data)
		if n > resultChunkSize {
			n = resultChunkSize
		}
		last := n == len(data)
		r := resultPayload{ID: id, Last: last, Data: data[:n]}
		if last {
			r.Err = errMsg
		}
		a := wire.GetAppender()
		appendResult(a, r)
		ok := b.writeFleetFrame(fc, FrameResult, a.Buf)
		wire.PutAppender(a)
		if !ok {
			return false
		}
		if last {
			return true
		}
		data = data[n:]
	}
}

// handleAttach runs one fleet session from its ATTACH frame on. Called
// on the connection handler goroutine; returns when the session ends.
func (b *broker) handleAttach(conn net.Conn, payload []byte) {
	fc := &fleetConn{conn: conn}
	at, err := decodeAttach(payload)
	if err != nil {
		b.s.ctrs.rejected.Add(1)
		b.writeError(fc, CodeProtocol, false, err.Error())
		return
	}
	if at.Version < 3 || b.s.maxVersion() < 3 {
		b.s.ctrs.rejected.Add(1)
		b.writeError(fc, CodeProtocol, false, "fleet attach requires protocol v3")
		return
	}
	a := wire.GetAppender()
	appendWelcome(a, welcomePayload{Version: 3, Credit: uint64(b.s.cfg.Credit)})
	ok := b.writeFleetFrame(fc, FrameWelcome, a.Buf)
	wire.PutAppender(a)
	if !ok {
		return
	}
	switch at.Role {
	case roleWorker:
		fc.slots = int(at.Slots)
		if fc.slots < 1 {
			fc.slots = 1
		}
		fc.sent = make(map[uint64]bool)
		b.runWorker(fc)
	case roleSubmitter:
		b.runSubmitter(fc)
	}
}

func (b *broker) writeError(fc *fleetConn, code ErrorCode, retryable bool, msg string) {
	a := wire.GetAppender()
	defer wire.PutAppender(a)
	appendError(a, errorPayload{Code: code, Retryable: retryable, Msg: msg})
	b.writeFleetFrame(fc, FrameError, a.Buf)
}

// runWorker feeds jobs to an attached worker and routes its results.
// The feeder goroutine pulls from the board; the session goroutine
// (this one) reads RESULT frames, reassembling chunked results by ID.
func (b *broker) runWorker(fc *fleetConn) {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			j := b.nextJob(fc)
			if j == nil {
				return
			}
			a := wire.GetAppender()
			appendJobFrame(a, jobPayload{ID: j.id, Body: j.body})
			ok := b.writeFleetFrame(fc, FrameJob, a.Buf)
			wire.PutAppender(a)
			if !ok {
				b.workerGone(fc)
				return
			}
		}
	}()
	defer b.workerGone(fc)
	partial := make(map[uint64][]byte)
	for {
		kind, payload, err := readFrame(fc.conn)
		if err != nil {
			return
		}
		if kind != FrameResult {
			b.s.ctrs.rejected.Add(1)
			return
		}
		r, err := decodeResult(payload)
		if err != nil {
			b.s.ctrs.rejected.Add(1)
			return
		}
		partial[r.ID] = append(partial[r.ID], r.Data...)
		if r.Last {
			data := partial[r.ID]
			delete(partial, r.ID)
			b.complete(fc, r.ID, data, r.Err)
		}
	}
}

// runSubmitter accepts jobs from an attached submitter until it hangs
// up. Results flow back asynchronously from complete().
func (b *broker) runSubmitter(fc *fleetConn) {
	defer b.submitterGone(fc)
	for {
		kind, payload, err := readFrame(fc.conn)
		if err != nil {
			return
		}
		if kind != FrameJob {
			b.s.ctrs.rejected.Add(1)
			return
		}
		j, err := decodeJobFrame(payload)
		if err != nil {
			b.s.ctrs.rejected.Add(1)
			return
		}
		b.submit(fc, j.ID, j.Body)
	}
}
