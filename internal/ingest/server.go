package ingest

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Config parameterizes a Server. The zero value is unusable; call
// DefaultConfig and override.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral
	// loopback port).
	Addr string
	// StoreDir roots the content-addressed bundle store.
	StoreDir string
	// Shards is the number of shard workers; sessions map onto them by
	// tenant hash, so one tenant's uploads serialize on one appender while
	// distinct tenants proceed in parallel.
	Shards int
	// QueueDepth bounds each shard's message queue. A full queue is the
	// backpressure signal: session handlers block up to ShedTimeout for a
	// slot, then shed the session with a retryable error.
	QueueDepth int
	// ShedTimeout is how long a handler waits on a full shard queue
	// before shedding the session.
	ShedTimeout time.Duration
	// Credit is the per-session in-flight byte allowance granted at
	// WELCOME; the shard returns credit as it consumes DATA frames.
	Credit int
	// MaxUploadBytes caps one upload's assembled size.
	MaxUploadBytes int
	// Verifiers is the background verifier pool size.
	Verifiers int
	// ReplayWorkers is passed to core.ReplayWorkers for each verification
	// replay (0: serial; negative: GOMAXPROCS).
	ReplayWorkers int
	// WriteTimeout bounds every server-side frame write, so a reader that
	// stopped draining its socket cannot wedge a shard worker.
	WriteTimeout time.Duration
	// MaxVersion caps the protocol version the server negotiates (0:
	// protoVersionMax). The mixed-version interop tests use it to stand
	// up an old-protocol server against new clients.
	MaxVersion int
	// JobTimeout is how long a dispatched fleet job may stay in flight on
	// one worker before the broker re-dispatches it to another (straggler
	// or dead-worker recovery). 0 selects a 30s default.
	JobTimeout time.Duration
}

// DefaultConfig returns the production-shaped defaults on a loopback
// ephemeral port.
func DefaultConfig() Config {
	return Config{
		Addr:           "127.0.0.1:0",
		Shards:         4,
		QueueDepth:     64,
		ShedTimeout:    time.Second,
		Credit:         256 << 10,
		MaxUploadBytes: 64 << 20,
		Verifiers:      2,
		ReplayWorkers:  0,
		WriteTimeout:   10 * time.Second,
	}
}

// shardMsg is one unit of work on a shard queue.
type shardMsg struct {
	up   *upload
	kind FrameKind // FrameData, FrameFinish; 0 for abort
	data []byte    // DATA payload
	dig  [digestSize]byte
}

// shard is one ingest lane: a bounded queue drained by a single worker
// goroutine that owns the pooled appenders of every upload hashed onto
// it.
type shard struct {
	ch chan shardMsg
}

// upload is one in-flight session's assembly state. The buf is owned by
// the shard worker between register and finish/abort; conn writes are
// serialized by wmu (the shard worker and the session handler both send
// frames). dead is atomic for the same reason: writeFrame marks it from
// whichever goroutine hit the failure, and the shard polls it.
type upload struct {
	tenant string
	conn   net.Conn
	wmu    *sync.Mutex
	buf    *wire.Appender
	size   int
	dead   atomic.Bool // set on write failure / size overflow; shard skips dead uploads
}

// Server is the recording-as-a-service ingest endpoint.
type Server struct {
	cfg      Config
	ln       net.Listener
	store    *Store
	shards   []*shard
	verifier *verifierPool
	verdicts *verdictBoard
	broker   *broker
	ctrs     counters

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	handlers sync.WaitGroup
	shardWG  sync.WaitGroup
}

// NewServer opens the store, starts the shard workers and verifier
// pool, and begins listening. Serve must be called to accept sessions.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Shards < 1 || cfg.QueueDepth < 1 || cfg.Credit < 1 || cfg.MaxUploadBytes < 1 {
		return nil, fmt.Errorf("ingest: config: shards, queue depth, credit and size cap must be positive")
	}
	store, err := OpenStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("ingest: listen: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		store:    store,
		verdicts: newVerdictBoard(),
		conns:    make(map[net.Conn]struct{}),
	}
	s.verifier = newVerifierPool(cfg.Verifiers, cfg.ReplayWorkers, s.verdicts)
	s.broker = newBroker(s, cfg.JobTimeout)
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{ch: make(chan shardMsg, cfg.QueueDepth)}
		s.shards = append(s.shards, sh)
		s.shardWG.Add(1)
		go s.runShard(sh)
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Store returns the server's bundle store.
func (s *Server) Store() *Store { return s.store }

// Serve accepts sessions until the listener closes. It always returns a
// non-nil error; after Close it returns net.ErrClosed.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.handlers.Add(1)
		go s.handle(conn)
	}
}

// WaitIdle blocks until every queued bundle has a published verdict.
// Sessions still uploading are not waited for — call it after the
// uploads whose verdicts are wanted have been acked.
func (s *Server) WaitIdle() { s.verifier.waitIdle() }

// Close stops accepting, tears down live sessions, drains the shards
// and verifier pool, and returns. Safe to call once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.handlers.Wait() // all producers gone; shards can be closed
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.shardWG.Wait()
	s.broker.close()
	s.verifier.close()
	return err
}

// maxVersion is the protocol ceiling the server negotiates down to.
func (s *Server) maxVersion() byte {
	if s.cfg.MaxVersion > 0 && s.cfg.MaxVersion < protoVersionMax {
		return byte(s.cfg.MaxVersion)
	}
	return protoVersionMax
}

// shardFor maps a tenant onto its shard by FNV-1a hash.
func (s *Server) shardFor(tenant string) *shard {
	h := fnv.New32a()
	io.WriteString(h, tenant)
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// writeFrame sends one frame on up's connection under its write lock
// and deadline. Returns false (and marks the upload dead) on failure.
func (s *Server) writeFrame(up *upload, kind FrameKind, payload []byte) bool {
	a := wire.GetAppender()
	defer wire.PutAppender(a)
	appendFrame(a, kind, payload)
	up.wmu.Lock()
	defer up.wmu.Unlock()
	up.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	_, err := up.conn.Write(a.Buf)
	if err != nil {
		up.dead.Store(true) // no more frames owed; the shard drops its work
		up.conn.Close()     // a wedged reader: sever the session
		return false
	}
	return true
}

// writeErrorFrame sends a typed ERROR frame.
func (s *Server) writeErrorFrame(up *upload, code ErrorCode, retryable bool, msg string) {
	a := wire.GetAppender()
	defer wire.PutAppender(a)
	appendError(a, errorPayload{Code: code, Retryable: retryable, Msg: msg})
	s.writeFrame(up, FrameError, a.Buf)
}

// enqueue offers msg to sh, blocking up to the shed timeout.
func (s *Server) enqueue(sh *shard, msg shardMsg) bool {
	select {
	case sh.ch <- msg:
		return true
	default:
	}
	t := time.NewTimer(s.cfg.ShedTimeout)
	defer t.Stop()
	select {
	case sh.ch <- msg:
		return true
	case <-t.C:
		return false
	}
}

// enqueueMust delivers lifecycle messages (abort) that release shard-
// owned state; these block without a timeout because dropping them
// would leak the upload's pooled buffer.
func (s *Server) enqueueMust(sh *shard, msg shardMsg) {
	sh.ch <- msg
}

// handle runs one session. The opening frame selects the session type:
// HELLO starts an upload (WELCOME, then the DATA/FINISH loop), ATTACH
// joins the fleet job plane as a worker or submitter, FETCH streams a
// stored bundle back. For uploads the handler owns the read side; the
// shard worker owns the upload buffer and sends GRANT/ACK frames.
func (s *Server) handle(conn net.Conn) {
	defer s.handlers.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	kind, payload, err := readFrame(conn)
	if err != nil {
		s.ctrs.rejected.Add(1)
		return // nothing was negotiated; no frame owed
	}
	switch kind {
	case FrameHello:
	case FrameAttach:
		s.broker.handleAttach(conn, payload)
		return
	case FrameFetch:
		s.handleFetch(conn, payload)
		return
	default:
		s.ctrs.rejected.Add(1)
		return
	}
	hello, err := decodeHello(payload)
	if err != nil || hello.Version < protoVersionMin {
		s.ctrs.rejected.Add(1)
		up := &upload{conn: conn, wmu: &sync.Mutex{}}
		s.writeErrorFrame(up, CodeProtocol, false, "bad hello")
		return
	}
	// Speak the newest version both sides know: a future client offering
	// a higher version is answered at our ceiling, not rejected.
	version := hello.Version
	if version > s.maxVersion() {
		version = s.maxVersion()
	}
	if hello.SizeHint > uint64(s.cfg.MaxUploadBytes) {
		s.ctrs.rejected.Add(1)
		up := &upload{conn: conn, wmu: &sync.Mutex{}}
		s.writeErrorFrame(up, CodeTooLarge, false,
			fmt.Sprintf("declared %d bytes, cap %d", hello.SizeHint, s.cfg.MaxUploadBytes))
		return
	}
	s.ctrs.sessions.Add(1)

	up := &upload{tenant: hello.Tenant, conn: conn, wmu: &sync.Mutex{}}
	sh := s.shardFor(hello.Tenant)

	// Register with the shard: the worker attaches the pooled appender.
	// Registration rides the same bounded queue as data, so an overloaded
	// shard sheds the session before it ever buffers a byte.
	if !s.enqueue(sh, shardMsg{up: up, kind: FrameHello}) {
		s.ctrs.shed.Add(1)
		s.writeErrorFrame(up, CodeOverloaded, true, "shard queue full")
		return
	}
	registered := true
	finished := false
	defer func() {
		if registered && !finished {
			s.ctrs.aborted.Add(1)
			s.enqueueMust(sh, shardMsg{up: up}) // abort: release the buffer
		}
	}()

	a := wire.GetAppender()
	appendWelcome(a, welcomePayload{Version: version, Credit: uint64(s.cfg.Credit)})
	ok := s.writeFrame(up, FrameWelcome, a.Buf)
	wire.PutAppender(a)
	if !ok {
		return
	}

	for {
		kind, payload, err := readFrame(conn)
		if err != nil {
			return // torn upload: the deferred abort reclaims state
		}
		switch kind {
		case FrameData, FrameDataZ:
			if kind == FrameDataZ {
				if version < 3 {
					s.ctrs.rejected.Add(1)
					s.writeErrorFrame(up, CodeProtocol, false, "dataz frame on a v"+
						fmt.Sprint(version)+" session")
					return
				}
				// Decode before the shard queue so the grant (and every
				// byte-accounting path) sees decoded sizes.
				payload, err = decodeDataZ(payload)
				if err != nil {
					s.ctrs.rejected.Add(1)
					s.writeErrorFrame(up, CodeProtocol, false, err.Error())
					return
				}
				s.ctrs.framesCompressed.Add(1)
			}
			if !s.enqueue(sh, shardMsg{up: up, kind: FrameData, data: payload}) {
				s.ctrs.shed.Add(1)
				s.writeErrorFrame(up, CodeOverloaded, true, "shard queue full")
				return
			}
			s.ctrs.bytesIngested.Add(uint64(len(payload)))
		case FrameFinish:
			fin, err := decodeFinish(payload)
			if err != nil {
				s.ctrs.rejected.Add(1)
				s.writeErrorFrame(up, CodeProtocol, false, err.Error())
				return
			}
			finished = true
			s.enqueueMust(sh, shardMsg{up: up, kind: FrameFinish, dig: fin.Digest})
			// The shard sends ACK (or ERROR) and releases the buffer; the
			// session is done once the client closes its side.
			io.Copy(io.Discard, conn)
			return
		default:
			s.ctrs.rejected.Add(1)
			s.writeErrorFrame(up, CodeProtocol, false, "unexpected "+kind.String()+" frame")
			return
		}
	}
}

// runShard drains one shard queue. The worker is the sole owner of
// every registered upload's assembly buffer, so appends need no locks;
// it returns credit after consuming each DATA frame, which is what
// closes the flow-control loop.
func (s *Server) runShard(sh *shard) {
	defer s.shardWG.Done()
	for msg := range sh.ch {
		up := msg.up
		switch msg.kind {
		case FrameHello:
			up.buf = wire.GetAppender()
		case FrameData:
			if up.dead.Load() {
				continue
			}
			if up.size+len(msg.data) > s.cfg.MaxUploadBytes {
				up.dead.Store(true)
				s.ctrs.rejected.Add(1)
				s.writeErrorFrame(up, CodeTooLarge, false,
					fmt.Sprintf("upload exceeds %d bytes", s.cfg.MaxUploadBytes))
				continue
			}
			up.buf.Raw(msg.data)
			up.size += len(msg.data)
			ga := wire.GetAppender()
			appendGrant(ga, grantPayload{Bytes: uint64(len(msg.data))})
			// A failed grant marks the upload dead inside writeFrame; the
			// handler will see the closed conn and abort.
			s.writeFrame(up, FrameGrant, ga.Buf)
			wire.PutAppender(ga)
		case FrameFinish:
			s.finishUpload(up, msg.dig)
			s.releaseUpload(up)
		default: // abort
			s.releaseUpload(up)
		}
	}
}

// releaseUpload returns the upload's pooled buffer.
func (s *Server) releaseUpload(up *upload) {
	if up.buf != nil {
		wire.PutAppender(up.buf)
		up.buf = nil
	}
}

// finishUpload verifies the upload digest, stores the bundle, queues
// verification, and acks.
func (s *Server) finishUpload(up *upload, want [digestSize]byte) {
	if up.dead.Load() {
		return
	}
	got := sha256.Sum256(up.buf.Buf)
	if subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
		s.ctrs.rejected.Add(1)
		s.writeErrorFrame(up, CodeDigestMismatch, false,
			fmt.Sprintf("upload hashed to %x, client declared %x", got, want))
		return
	}
	digest, existed, err := s.store.Put(up.buf.Buf)
	if err != nil {
		// Store faults (disk full, permissions) are retryable from the
		// client's point of view: nothing was made addressable.
		s.writeErrorFrame(up, CodeOverloaded, true, err.Error())
		return
	}
	if existed {
		s.ctrs.duplicates.Add(1)
	}
	// Fleet bundles are job inputs, not recordings to audit: the fleet
	// is about to replay them on purpose, so burning a verifier on each
	// would double every distributed run's work.
	if up.tenant != FleetTenant && s.verdicts.claim(up.tenant, digest) {
		// Verification reads the bundle back from the store (not the pooled
		// buffer, which is about to be recycled): the verdict describes the
		// durable object.
		if data, err := s.store.Get(digest); err == nil {
			s.verifier.enqueue(verifyJob{tenant: up.tenant, digest: digest, data: data})
		} else {
			s.verdicts.publish(Verdict{
				Tenant: up.tenant, Digest: digest,
				Status: StatusUnverifiable, Detail: err.Error(),
			})
		}
	}
	a := wire.GetAppender()
	defer wire.PutAppender(a)
	appendAck(a, ackPayload{Digest: digest, Duplicate: existed})
	if s.writeFrame(up, FrameAck, a.Buf) {
		s.ctrs.accepted.Add(1)
	}
}

// hexDigest is a tiny helper for tests and the CLI.
func hexDigest(sum [digestSize]byte) string { return hex.EncodeToString(sum[:]) }

// FleetTenant is the reserved tenant fleet submitters upload job
// bundles under. Fleet bundles skip the background verifier — workers
// replay them as part of the job itself.
const FleetTenant = "_fleet"

// handleFetch streams a stored bundle back to a worker: DATA frames in
// upload-sized chunks, then FINISH carrying the SHA-256 of the whole
// object so the worker can check what it reassembled.
func (s *Server) handleFetch(conn net.Conn, payload []byte) {
	up := &upload{conn: conn, wmu: &sync.Mutex{}}
	f, err := decodeFetch(payload)
	if err != nil {
		s.ctrs.rejected.Add(1)
		s.writeErrorFrame(up, CodeProtocol, false, err.Error())
		return
	}
	data, err := s.store.Get(f.Digest)
	if err != nil {
		s.writeErrorFrame(up, CodeNotFound, false, fmt.Sprintf("digest %s: %v", f.Digest, err))
		return
	}
	for off := 0; off < len(data); off += uploadChunk {
		end := off + uploadChunk
		if end > len(data) {
			end = len(data)
		}
		if !s.writeFrame(up, FrameData, data[off:end]) {
			return
		}
	}
	sum := sha256.Sum256(data)
	a := wire.GetAppender()
	defer wire.PutAppender(a)
	appendFinish(a, finishPayload{Digest: sum})
	s.writeFrame(up, FrameFinish, a.Buf)
}
