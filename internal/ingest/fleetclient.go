package ingest

// Client-side fleet transport: typed connections for the two ATTACH
// roles plus the FETCH opener. These are deliberately thin — framing,
// negotiation, chunk reassembly — so the executor and worker logic can
// live outside this package (internal/fleet) without re-implementing
// the wire protocol.

import (
	"bufio"
	"crypto/sha256"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// fleetDial opens a fleet session in the given role.
func fleetDial(addr string, role byte, slots int) (net.Conn, *bufio.Reader, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: dial: %w", err)
	}
	a := wire.GetAppender()
	var f wire.Appender
	appendAttach(&f, attachPayload{Version: protoVersionMax, Role: role, Slots: uint64(slots)})
	appendFrame(a, FrameAttach, f.Buf)
	_, err = conn.Write(a.Buf)
	wire.PutAppender(a)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("ingest: attach: %w", err)
	}
	br := bufio.NewReader(conn)
	kind, payload, err := readFrame(br)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("ingest: attach: %w", err)
	}
	if kind == FrameError {
		ep, derr := decodeError(payload)
		conn.Close()
		if derr != nil {
			return nil, nil, derr
		}
		return nil, nil, &ServerError{Code: ep.Code, Retryable: ep.Retryable, Msg: ep.Msg}
	}
	if kind != FrameWelcome {
		conn.Close()
		return nil, nil, fmt.Errorf("%w: %s instead of welcome", ErrFrame, kind)
	}
	if w, err := decodeWelcome(payload); err != nil {
		conn.Close()
		return nil, nil, err
	} else if w.Version < 3 {
		conn.Close()
		return nil, nil, fmt.Errorf("%w: server negotiated v%d, fleet needs v3", ErrFrame, w.Version)
	}
	return conn, br, nil
}

// sendFleetFrame writes one frame. Callers serialize writes themselves
// (both session types write from a single goroutine).
func sendFleetFrame(conn net.Conn, kind FrameKind, payload []byte) error {
	a := wire.GetAppender()
	defer wire.PutAppender(a)
	appendFrame(a, kind, payload)
	if _, err := conn.Write(a.Buf); err != nil {
		return fmt.Errorf("ingest: send %s: %w", kind, err)
	}
	return nil
}

// Submitter is a submitter-role fleet session: it pushes job bodies
// under caller-chosen IDs and pulls completed results.
type Submitter struct {
	conn    net.Conn
	br      *bufio.Reader
	partial map[uint64][]byte
}

// DialSubmitter attaches to a fleet server as a submitter.
func DialSubmitter(addr string) (*Submitter, error) {
	conn, br, err := fleetDial(addr, roleSubmitter, 0)
	if err != nil {
		return nil, err
	}
	return &Submitter{conn: conn, br: br, partial: make(map[uint64][]byte)}, nil
}

// Close severs the session; the server drops any unfinished jobs.
func (s *Submitter) Close() error { return s.conn.Close() }

// Submit puts one job on the server's board under id. IDs are the
// caller's namespace; reusing one before its result arrives is a
// caller bug.
func (s *Submitter) Submit(id uint64, body []byte) error {
	var p wire.Appender
	appendJobFrame(&p, jobPayload{ID: id, Body: body})
	return sendFleetFrame(s.conn, FrameJob, p.Buf)
}

// Next blocks for the next completed job: its ID, result payload, and
// the worker-side error message (empty on success). Results arrive in
// completion order, not submission order.
func (s *Submitter) Next() (id uint64, data []byte, errMsg string, err error) {
	for {
		kind, payload, err := readFrame(s.br)
		if err != nil {
			return 0, nil, "", fmt.Errorf("ingest: submitter recv: %w", err)
		}
		if kind == FrameError {
			ep, derr := decodeError(payload)
			if derr != nil {
				return 0, nil, "", derr
			}
			return 0, nil, "", &ServerError{Code: ep.Code, Retryable: ep.Retryable, Msg: ep.Msg}
		}
		if kind != FrameResult {
			return 0, nil, "", fmt.Errorf("%w: %s instead of result", ErrFrame, kind)
		}
		r, err := decodeResult(payload)
		if err != nil {
			return 0, nil, "", err
		}
		s.partial[r.ID] = append(s.partial[r.ID], r.Data...)
		if r.Last {
			data := s.partial[r.ID]
			delete(s.partial, r.ID)
			return r.ID, data, r.Err, nil
		}
	}
}

// WorkerConn is a worker-role fleet session: it pulls job envelopes and
// pushes results. Reads and writes may come from different goroutines
// (jobs execute concurrently); writes are serialized by wmu.
type WorkerConn struct {
	conn net.Conn
	br   *bufio.Reader
	wmu  sync.Mutex
}

// DialWorker attaches to a fleet server as a worker advertising the
// given slot count.
func DialWorker(addr string, slots int) (*WorkerConn, error) {
	conn, br, err := fleetDial(addr, roleWorker, slots)
	if err != nil {
		return nil, err
	}
	return &WorkerConn{conn: conn, br: br}, nil
}

// Close severs the session; the server re-queues anything in flight.
func (w *WorkerConn) Close() error { return w.conn.Close() }

// NextJob blocks for the next job envelope.
func (w *WorkerConn) NextJob() (id uint64, body []byte, err error) {
	kind, payload, err := readFrame(w.br)
	if err != nil {
		return 0, nil, fmt.Errorf("ingest: worker recv: %w", err)
	}
	if kind != FrameJob {
		return 0, nil, fmt.Errorf("%w: %s instead of job", ErrFrame, kind)
	}
	j, err := decodeJobFrame(payload)
	if err != nil {
		return 0, nil, err
	}
	return j.ID, j.Body, nil
}

// SendResult streams one job's result back, chunked under the
// maxFramePayload cap. Safe for concurrent use.
func (w *WorkerConn) SendResult(id uint64, data []byte, errMsg string) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	for {
		n := len(data)
		if n > resultChunkSize {
			n = resultChunkSize
		}
		last := n == len(data)
		r := resultPayload{ID: id, Last: last, Data: data[:n]}
		if last {
			r.Err = errMsg
		}
		var p wire.Appender
		appendResult(&p, r)
		if err := sendFleetFrame(w.conn, FrameResult, p.Buf); err != nil {
			return err
		}
		if last {
			return nil
		}
		data = data[n:]
	}
}

// FetchBundle retrieves a stored bundle by digest over a fetch session:
// the server streams DATA frames and closes with FINISH carrying the
// object's SHA-256, which is checked against both the reassembled bytes
// and the requested digest.
func FetchBundle(addr, digest string) ([]byte, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("ingest: dial: %w", err)
	}
	defer conn.Close()
	a := wire.GetAppender()
	var f wire.Appender
	appendFetch(&f, fetchPayload{Digest: digest})
	appendFrame(a, FrameFetch, f.Buf)
	_, err = conn.Write(a.Buf)
	wire.PutAppender(a)
	if err != nil {
		return nil, fmt.Errorf("ingest: fetch: %w", err)
	}
	br := bufio.NewReader(conn)
	var data []byte
	for {
		kind, payload, err := readFrame(br)
		if err != nil {
			return nil, fmt.Errorf("ingest: fetch recv: %w", err)
		}
		switch kind {
		case FrameData:
			data = append(data, payload...)
		case FrameFinish:
			fin, err := decodeFinish(payload)
			if err != nil {
				return nil, err
			}
			sum := sha256.Sum256(data)
			if hexDigest(sum) != digest || sum != fin.Digest {
				return nil, fmt.Errorf("%w: fetched object hashes to %x, asked for %s", ErrFrame, sum, digest)
			}
			return data, nil
		case FrameError:
			ep, derr := decodeError(payload)
			if derr != nil {
				return nil, derr
			}
			return nil, &ServerError{Code: ep.Code, Retryable: ep.Retryable, Msg: ep.Msg}
		default:
			return nil, fmt.Errorf("%w: %s during fetch", ErrFrame, kind)
		}
	}
}
