package ingest

import (
	"bufio"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"time"

	"repro/internal/wire"
)

// ServerError is a typed server-side rejection surfaced to an uploader.
type ServerError struct {
	Code      ErrorCode
	Retryable bool
	Msg       string
}

// Error implements error.
func (e *ServerError) Error() string {
	return fmt.Sprintf("ingest: server rejected upload (%s): %s", e.Code, e.Msg)
}

// IsRetryable reports whether err is a shed/transient server rejection
// worth retrying (an overloaded shard, a draining server).
func IsRetryable(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Retryable
}

// Client is one recorder's connection to the ingest fleet. A client
// carries one upload session; it is not safe for concurrent use.
type Client struct {
	conn       net.Conn
	br         *bufio.Reader
	credit     int
	chunk      int
	version    byte // negotiated protocol version, set by hello
	maxVersion byte // highest version to offer; 0 means protoVersionMax
}

// SetMaxVersion caps the protocol version this client offers — the
// mixed-version interop tests use it to impersonate an old client
// against a new server. Must be called before Upload.
func (c *Client) SetMaxVersion(v byte) { c.maxVersion = v }

// offerVersion is the version hello offers.
func (c *Client) offerVersion() byte {
	if c.maxVersion != 0 {
		return c.maxVersion
	}
	return protoVersionMax
}

// uploadChunk is the default DATA frame payload size.
const uploadChunk = 64 << 10

// Dial connects to an ingest server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("ingest: dial: %w", err)
	}
	return &Client{conn: conn, br: bufio.NewReader(conn), chunk: uploadChunk}, nil
}

// Close severs the connection.
func (c *Client) Close() error { return c.conn.Close() }

// send frames payload under kind and writes it.
func (c *Client) send(kind FrameKind, payload []byte) error {
	a := wire.GetAppender()
	defer wire.PutAppender(a)
	appendFrame(a, kind, payload)
	if _, err := c.conn.Write(a.Buf); err != nil {
		return fmt.Errorf("ingest: send: %w", err)
	}
	return nil
}

// recv reads the next server frame, decoding ERROR frames into
// *ServerError.
func (c *Client) recv() (FrameKind, []byte, error) {
	kind, payload, err := readFrame(c.br)
	if err != nil {
		return 0, nil, fmt.Errorf("ingest: recv: %w", err)
	}
	if kind == FrameError {
		ep, err := decodeError(payload)
		if err != nil {
			return 0, nil, err
		}
		return 0, nil, &ServerError{Code: ep.Code, Retryable: ep.Retryable, Msg: ep.Msg}
	}
	return kind, payload, nil
}

// hello negotiates the session and the initial credit.
func (c *Client) hello(tenant string, sizeHint uint64) error {
	a := wire.GetAppender()
	appendHello(a, helloPayload{Version: c.offerVersion(), Tenant: tenant, SizeHint: sizeHint})
	err := c.send(FrameHello, a.Buf)
	wire.PutAppender(a)
	if err != nil {
		return err
	}
	kind, payload, err := c.recv()
	if err != nil {
		return err
	}
	if kind != FrameWelcome {
		return fmt.Errorf("%w: %s instead of welcome", ErrFrame, kind)
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		return err
	}
	// The server may negotiate down from the offer, never up past it and
	// never below the client's floor.
	if w.Version < protoVersionMin || w.Version > c.offerVersion() {
		return fmt.Errorf("%w: server negotiated version %d, client speaks %d..%d",
			ErrFrame, w.Version, protoVersionMin, c.offerVersion())
	}
	c.version = w.Version
	if w.Credit == 0 {
		return fmt.Errorf("%w: zero initial credit", ErrFrame)
	}
	c.credit = int(w.Credit)
	if c.chunk > c.credit {
		c.chunk = c.credit
	}
	return nil
}

// sendData streams stream in credit-bounded DATA frames, absorbing
// GRANT frames as they come back. It never puts more than the granted
// allowance in flight — that is the client half of the backpressure
// loop: when a shard lags, grants lag, and the uploader stalls here
// instead of ballooning the server's queues.
func (c *Client) sendData(stream []byte) error {
	for off := 0; off < len(stream); {
		for c.credit <= 0 {
			kind, payload, err := c.recv()
			if err != nil {
				return err
			}
			if kind != FrameGrant {
				return fmt.Errorf("%w: %s while waiting for credit", ErrFrame, kind)
			}
			g, err := decodeGrant(payload)
			if err != nil {
				return err
			}
			c.credit += int(g.Bytes)
		}
		n := c.chunk
		if n > c.credit {
			n = c.credit
		}
		if n > len(stream)-off {
			n = len(stream) - off
		}
		if err := c.sendChunk(stream[off : off+n]); err != nil {
			return err
		}
		// Credit is accounted in decoded bytes on both sides, so the flow-
		// control loop is oblivious to whether a chunk traveled compressed.
		c.credit -= n
		off += n
	}
	return nil
}

// sendChunk sends one run of stream bytes, compressed when the
// negotiated version allows it and compression actually wins: on v3
// sessions the chunk is block-compressed and sent as DATAZ iff the
// framed form (CRC + block) is smaller than the raw bytes — log streams
// are usually highly compressible, already-dense chunks fall back to
// plain DATA. Pre-v3 sessions never see a DATAZ frame.
func (c *Client) sendChunk(chunk []byte) error {
	if c.version >= 3 {
		a := wire.GetAppender()
		appendDataZ(a, chunk)
		if len(a.Buf) < len(chunk) {
			err := c.send(FrameDataZ, a.Buf)
			wire.PutAppender(a)
			return err
		}
		wire.PutAppender(a)
	}
	return c.send(FrameData, chunk)
}

// Upload sends one recorded stream under tenant and returns the
// store digest the server acked. The digest is computed client-side and
// checked by the server, so a corrupted upload is rejected, never
// stored.
func (c *Client) Upload(tenant string, stream []byte) (digest string, duplicate bool, err error) {
	if err := c.hello(tenant, uint64(len(stream))); err != nil {
		return "", false, err
	}
	if err := c.sendData(stream); err != nil {
		return "", false, err
	}
	sum := sha256.Sum256(stream)
	a := wire.GetAppender()
	appendFinish(a, finishPayload{Digest: sum})
	err = c.send(FrameFinish, a.Buf)
	wire.PutAppender(a)
	if err != nil {
		return "", false, err
	}
	// Late grants for the final DATA frames may precede the ACK.
	for {
		kind, payload, err := c.recv()
		if err != nil {
			return "", false, err
		}
		switch kind {
		case FrameGrant:
			continue
		case FrameAck:
			ack, err := decodeAck(payload)
			if err != nil {
				return "", false, err
			}
			if want := hexDigest(sum); ack.Digest != want {
				return "", false, fmt.Errorf("%w: server acked digest %s, sent %s", ErrFrame, ack.Digest, want)
			}
			return ack.Digest, ack.Duplicate, nil
		default:
			return "", false, fmt.Errorf("%w: %s instead of ack", ErrFrame, kind)
		}
	}
}

// UploadTorn opens a session, streams only stream[:cut], then severs
// the connection without FINISH — a recorder dying mid-upload. Used by
// the conformance tests and load generator to exercise the abort path.
func (c *Client) UploadTorn(tenant string, stream []byte, cut int) error {
	if cut > len(stream) {
		cut = len(stream)
	}
	if err := c.hello(tenant, uint64(len(stream))); err != nil {
		return err
	}
	if err := c.sendData(stream[:cut]); err != nil {
		return err
	}
	return c.conn.Close()
}

// backoffCapFactor bounds the exponential retry backoff at
// base << backoffCapFactor — with the default base that keeps the
// worst-case sleep in seconds, not minutes, while still spreading a
// thundering herd across an order of magnitude.
const backoffCapFactor = 6

// retryDelay computes the sleep before retry attempt (1-based): capped
// exponential backoff with deterministic, seed-jittered spread. The
// uncapped exponent doubles from base; the jitter draws the actual
// delay uniformly from [exp/2, exp), seeded by (tenant, attempt) — the
// same uploader retries on the same schedule every run (reproducible
// tests), while distinct tenants shed from one overload burst retry at
// different times instead of re-stampeding in lockstep.
func retryDelay(tenant string, attempt int, base time.Duration) time.Duration {
	if base <= 0 || attempt < 1 {
		return 0
	}
	shift := attempt - 1
	if shift > backoffCapFactor {
		shift = backoffCapFactor
	}
	exp := base << shift
	h := fnv.New64a()
	io.WriteString(h, tenant)
	fmt.Fprintf(h, "/%d", attempt)
	frac := float64(h.Sum64()>>11) / float64(1<<53) // uniform [0, 1)
	return exp/2 + time.Duration(frac*float64(exp/2))
}

// Upload dials addr and uploads stream under tenant, retrying dial
// failures and shed (retryable) rejections up to attempts tries. The
// sleep between tries is capped exponential from backoff with
// deterministic per-tenant jitter — see retryDelay.
func Upload(addr, tenant string, stream []byte, attempts int, backoff time.Duration) (digest string, duplicate bool, retries int, err error) {
	if attempts < 1 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		if i > 0 {
			retries++
			time.Sleep(retryDelay(tenant, i, backoff))
		}
		var c *Client
		c, err = Dial(addr)
		if err != nil {
			continue // dial races with server start/stop; retry
		}
		digest, duplicate, err = c.Upload(tenant, stream)
		c.Close()
		if err == nil || !IsRetryable(err) {
			return digest, duplicate, retries, err
		}
	}
	return "", false, retries, err
}
