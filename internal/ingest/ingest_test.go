package ingest

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/segment"
	"repro/internal/wire"
	"repro/internal/workload"
)

// recordStream records the named catalogue workload and returns its
// segmented stream image plus the recorded bundle.
func recordStream(t testing.TB, name string, threads int, seed uint64) (*core.Bundle, []byte) {
	t.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	prog := spec.Build(threads)
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Cores = 2
	cfg.Threads = threads
	cfg.Seed = seed
	cfg.KernelSeed = seed + 1000
	cfg.FlushEveryChunks = 8
	cfg.CheckpointEveryInstrs = 2000
	var buf bytes.Buffer
	b, err := core.StreamRecord(prog, cfg, &buf)
	if err != nil {
		t.Fatalf("stream record %s: %v", name, err)
	}
	return b, buf.Bytes()
}

// startServer runs an ingest server on an ephemeral loopback port with
// a temp-dir store, tearing it down with the test.
func startServer(t testing.TB, mut func(*Config)) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.StoreDir = t.TempDir()
	cfg.Shards = 2
	cfg.Verifiers = 1
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStorePutGetDedupe(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("quickrec stream bytes")
	d1, existed, err := st.Put(data)
	if err != nil || existed {
		t.Fatalf("first put: %s existed=%v err=%v", d1, existed, err)
	}
	sum := sha256.Sum256(data)
	if want := hexDigest(sum); d1 != want {
		t.Fatalf("digest %s, want %s", d1, want)
	}
	d2, existed, err := st.Put(data)
	if err != nil || !existed || d2 != d1 {
		t.Fatalf("second put: %s existed=%v err=%v", d2, existed, err)
	}
	got, err := st.Get(d1)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get: %q %v", got, err)
	}
	list, err := st.List()
	if err != nil || len(list) != 1 || list[0] != d1 {
		t.Fatalf("list: %v %v", list, err)
	}
	if _, err := st.Get("nope"); err == nil {
		t.Fatal("get of malformed digest succeeded")
	}
}

func TestUploadStoreVerify(t *testing.T) {
	bundle, stream := recordStream(t, "counter", 2, 1)
	s := startServer(t, nil)

	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	digest, dup, err := c.Upload("sphere-a", stream)
	if err != nil || dup {
		t.Fatalf("upload: %s dup=%v err=%v", digest, dup, err)
	}
	stored, err := s.Store().Get(digest)
	if err != nil || !bytes.Equal(stored, stream) {
		t.Fatalf("stored bundle differs from upload: %v", err)
	}

	s.WaitIdle()
	v, ok := s.Verdict("sphere-a", digest)
	if !ok {
		t.Fatal("no verdict published")
	}
	if v.Status != StatusAccepted {
		t.Fatalf("verdict %s (%s), want accepted", v.Status, v.Detail)
	}
	// The server's verification replay must agree bit-for-bit with a
	// local replay of the same recording.
	spec, _ := workload.ByName("counter")
	rr, err := core.Replay(spec.Build(2), bundle)
	if err != nil {
		t.Fatal(err)
	}
	if v.MemChecksum != rr.MemChecksum || v.Steps != rr.Steps {
		t.Fatalf("server replayed (sum %#x, %d steps), local (sum %#x, %d steps)",
			v.MemChecksum, v.Steps, rr.MemChecksum, rr.Steps)
	}

	ctrs := s.Counters()
	if ctrs.Accepted != 1 || ctrs.Duplicates != 0 || ctrs.VerdictsBy[StatusAccepted] != 1 {
		t.Fatalf("counters: %+v", ctrs)
	}
}

func TestDuplicateUploadDeduplicates(t *testing.T) {
	_, stream := recordStream(t, "counter", 2, 2)
	s := startServer(t, nil)
	d1, dup1, _, err := Upload(s.Addr(), "sphere-a", stream, 1, 0)
	if err != nil || dup1 {
		t.Fatalf("first upload: %v dup=%v", err, dup1)
	}
	d2, dup2, _, err := Upload(s.Addr(), "sphere-a", stream, 1, 0)
	if err != nil || !dup2 || d2 != d1 {
		t.Fatalf("second upload: %s dup=%v err=%v", d2, dup2, err)
	}
	list, err := s.Store().List()
	if err != nil || len(list) != 1 {
		t.Fatalf("store holds %v, want exactly one bundle", list)
	}
	s.WaitIdle()
	if n := s.Counters().VerdictsBy[StatusAccepted]; n != 1 {
		t.Fatalf("%d accepted verdicts for one deduplicated bundle", n)
	}
}

func TestTornRecordingUploadsAsTornVerdict(t *testing.T) {
	// A complete upload of a torn *recording*: the recorder died mid-run
	// and its salvage tool shipped the surviving prefix.
	_, stream := recordStream(t, "counter", 2, 3)
	offs := segment.Offsets(stream)
	if len(offs) < 4 {
		t.Fatalf("stream too short: %d segments", len(offs))
	}
	cut := stream[:offs[len(offs)/2]]
	s := startServer(t, nil)
	digest, _, _, err := Upload(s.Addr(), "sphere-t", cut, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	v, ok := s.Verdict("sphere-t", digest)
	if !ok || v.Status != StatusTorn {
		t.Fatalf("verdict %+v, want torn", v)
	}
	if v.Steps == 0 {
		t.Fatal("torn verdict carries no prefix-replay evidence")
	}
}

func TestTornUploadAbortsWithoutStoring(t *testing.T) {
	_, stream := recordStream(t, "counter", 2, 4)
	s := startServer(t, nil)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.UploadTorn("sphere-x", stream, len(stream)/2); err != nil {
		t.Fatalf("torn upload: %v", err)
	}
	// The abort is processed asynchronously; poll the counter.
	deadline := time.Now().Add(5 * time.Second)
	for s.Counters().Aborted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("aborted upload never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	list, err := s.Store().List()
	if err != nil || len(list) != 0 {
		t.Fatalf("torn upload left %v in the store", list)
	}
}

func TestUnknownProgramVerdictUnverifiable(t *testing.T) {
	spec, _ := workload.ByName("counter")
	prog := spec.Build(2)
	prog.Name = "prog-not-in-catalogue"
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Cores = 2
	cfg.Threads = 2
	var buf bytes.Buffer
	if _, err := core.StreamRecord(prog, cfg, &buf); err != nil {
		t.Fatal(err)
	}
	s := startServer(t, nil)
	digest, _, _, err := Upload(s.Addr(), "sphere-u", buf.Bytes(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	if v, _ := s.Verdict("sphere-u", digest); v.Status != StatusUnverifiable {
		t.Fatalf("verdict %+v, want unverifiable", v)
	}
}

func TestDigestMismatchRejected(t *testing.T) {
	_, stream := recordStream(t, "counter", 2, 5)
	s := startServer(t, nil)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.hello("sphere-d", uint64(len(stream))); err != nil {
		t.Fatal(err)
	}
	if err := c.sendData(stream); err != nil {
		t.Fatal(err)
	}
	var fin finishPayload // declare an all-zero digest: a corrupted upload
	var a wire.Appender
	appendFinish(&a, fin)
	if err := c.send(FrameFinish, a.Buf); err != nil {
		t.Fatal(err)
	}
	var se *ServerError
	for {
		_, _, err := c.recv()
		if err == nil {
			continue // drain late grants
		}
		if !errors.As(err, &se) {
			t.Fatalf("error %v, want ServerError", err)
		}
		break
	}
	if se.Code != CodeDigestMismatch || se.Retryable {
		t.Fatalf("rejection %+v, want non-retryable digest mismatch", se)
	}
	if list, _ := s.Store().List(); len(list) != 0 {
		t.Fatalf("mismatched upload stored: %v", list)
	}
}

func TestOversizeUploadRejected(t *testing.T) {
	_, stream := recordStream(t, "counter", 2, 6)
	s := startServer(t, func(c *Config) { c.MaxUploadBytes = 16 })
	_, _, _, err := Upload(s.Addr(), "sphere-o", stream, 1, 0)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeTooLarge || se.Retryable {
		t.Fatalf("oversize upload: %v, want non-retryable too-large", err)
	}
}

// shedThenAccept is a front end that sheds its first sheds sessions
// with a retryable overload error (exactly what an overloaded shard
// sends) and proxies later sessions to the real server — a
// deterministic way to exercise the client's shed-retry loop.
func shedThenAccept(t *testing.T, sheds int, s *Server) (addr string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if i < sheds {
				// Read the HELLO, then shed like an overloaded shard.
				readFrame(conn)
				a := wire.GetAppender()
				var p wire.Appender
				appendError(&p, errorPayload{Code: CodeOverloaded, Retryable: true, Msg: "shard queue full"})
				appendFrame(a, FrameError, p.Buf)
				conn.Write(a.Buf)
				wire.PutAppender(a)
				conn.Close()
				continue
			}
			// Proxy the session to the real server.
			up, err := net.Dial("tcp", s.Addr())
			if err != nil {
				conn.Close()
				return
			}
			go func() { defer up.Close(); defer conn.Close(); copyConn(up, conn) }()
			go func() { copyConn(conn, up) }()
		}
	}()
	return ln.Addr().String()
}

func copyConn(dst, src net.Conn) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

func TestUploadRetriesShedSessions(t *testing.T) {
	_, stream := recordStream(t, "counter", 2, 7)
	s := startServer(t, nil)
	addr := shedThenAccept(t, 2, s)
	digest, _, retries, err := Upload(addr, "sphere-r", stream, 4, time.Millisecond)
	if err != nil {
		t.Fatalf("upload through shedding front end: %v", err)
	}
	if retries != 2 {
		t.Fatalf("%d retries, want 2", retries)
	}
	if _, err := s.Store().Get(digest); err != nil {
		t.Fatalf("retried upload not stored: %v", err)
	}
	// Exhausting attempts surfaces the typed retryable error.
	addr2 := shedThenAccept(t, 1000, s)
	_, _, _, err = Upload(addr2, "sphere-r", stream, 2, time.Millisecond)
	if !IsRetryable(err) {
		t.Fatalf("exhausted retries: %v, want retryable ServerError", err)
	}
}

func TestShardEnqueueShedsWhenFull(t *testing.T) {
	// White-box: a shard with no worker, so the queue state is exact.
	s := &Server{cfg: Config{ShedTimeout: 5 * time.Millisecond}}
	sh := &shard{ch: make(chan shardMsg, 1)}
	if !s.enqueue(sh, shardMsg{}) {
		t.Fatal("enqueue into an empty queue shed")
	}
	start := time.Now()
	if s.enqueue(sh, shardMsg{}) {
		t.Fatal("enqueue into a full queue succeeded")
	}
	if waited := time.Since(start); waited < 5*time.Millisecond {
		t.Fatalf("shed after %v, before the shed timeout elapsed", waited)
	}
	// A slot opening during the wait rescues the message instead.
	slow := &Server{cfg: Config{ShedTimeout: 5 * time.Second}}
	go func() {
		time.Sleep(10 * time.Millisecond)
		<-sh.ch
	}()
	if !slow.enqueue(sh, shardMsg{}) {
		t.Fatal("enqueue shed although a slot opened within the timeout")
	}
}
