package ingest

// Payload codecs for the v3 frames: the compressed data plane (DATAZ)
// and the fleet job plane (ATTACH/JOB/RESULT/FETCH).
//
// Job and result payloads are opaque to this layer beyond their routing
// envelope — the broker moves bytes between submitters and workers and
// never inspects a job's meaning. The dispatch package owns the job
// body codec; here a frame only adds the broker's routing ID (and, for
// results, the chunking needed to stay under maxFramePayload).

import (
	"fmt"
	"hash/crc32"

	"repro/internal/wire"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendDataZ frames a run of stream bytes as a checksummed compressed
// block. The CRC covers the on-wire block bytes (method byte included),
// so corruption is caught before decompression runs on hostile input.
func appendDataZ(a *wire.Appender, data []byte) {
	var blk wire.Appender
	wire.AppendBlock(&blk, data)
	a.U32(crc32.Checksum(blk.Buf, castagnoli))
	a.Raw(blk.Buf)
}

// decodeDataZ undoes appendDataZ, returning the raw stream bytes.
func decodeDataZ(data []byte) ([]byte, error) {
	c := wire.CursorOf(data)
	want, err := c.U32()
	if err != nil {
		return nil, fmt.Errorf("%w: dataz crc: %v", ErrFrame, err)
	}
	if got := crc32.Checksum(data[c.Pos():], castagnoli); got != want {
		return nil, fmt.Errorf("%w: dataz crc %#x, want %#x", ErrFrame, got, want)
	}
	raw, _, err := wire.DecodeBlock(&c, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: dataz block: %v", ErrFrame, err)
	}
	if err := c.Done(); err != nil {
		return nil, fmt.Errorf("%w: dataz trailer: %v", ErrFrame, err)
	}
	return raw, nil
}

// Fleet session roles carried by ATTACH.
const (
	roleWorker    = 1 // pulls jobs, pushes results
	roleSubmitter = 2 // pushes jobs, pulls results
)

// attachPayload opens a fleet session.
type attachPayload struct {
	Version byte
	Role    byte
	Slots   uint64 // worker concurrency; 0 for submitters
}

func appendAttach(a *wire.Appender, at attachPayload) {
	a.Byte(at.Version)
	a.Byte(at.Role)
	a.Uvarint(at.Slots)
}

func decodeAttach(data []byte) (attachPayload, error) {
	var at attachPayload
	c := wire.CursorOf(data)
	var err error
	if at.Version, err = c.Byte(); err != nil {
		return at, fmt.Errorf("%w: attach version: %v", ErrFrame, err)
	}
	if at.Role, err = c.Byte(); err != nil {
		return at, fmt.Errorf("%w: attach role: %v", ErrFrame, err)
	}
	if at.Role != roleWorker && at.Role != roleSubmitter {
		return at, fmt.Errorf("%w: attach role %d", ErrFrame, at.Role)
	}
	if at.Slots, err = c.Uvarint(); err != nil {
		return at, fmt.Errorf("%w: attach slots: %v", ErrFrame, err)
	}
	if at.Slots > 1<<10 {
		return at, fmt.Errorf("%w: attach slots %d out of range", ErrFrame, at.Slots)
	}
	if err := c.Done(); err != nil {
		return at, fmt.Errorf("%w: attach trailer: %v", ErrFrame, err)
	}
	return at, nil
}

// jobPayload is one job envelope: a routing ID plus the opaque job body
// (a dispatch job encoding — kind, bundle digest, parameters).
type jobPayload struct {
	ID   uint64
	Body []byte
}

func appendJobFrame(a *wire.Appender, j jobPayload) {
	a.Uvarint(j.ID)
	a.Blob(j.Body)
}

func decodeJobFrame(data []byte) (jobPayload, error) {
	var j jobPayload
	c := wire.CursorOf(data)
	var err error
	if j.ID, err = c.Uvarint(); err != nil {
		return j, fmt.Errorf("%w: job id: %v", ErrFrame, err)
	}
	body, err := c.Blob()
	if err != nil {
		return j, fmt.Errorf("%w: job body: %v", ErrFrame, err)
	}
	j.Body = body
	if err := c.Done(); err != nil {
		return j, fmt.Errorf("%w: job trailer: %v", ErrFrame, err)
	}
	return j, nil
}

// resultChunkSize bounds one RESULT frame's data chunk, leaving
// headroom under maxFramePayload for the envelope fields.
const resultChunkSize = 256 << 10

// resultPayload is one chunk of a job's result. A result is a sequence
// of RESULT frames sharing an ID; Last marks the final chunk, which
// alone carries the error string (empty = success).
type resultPayload struct {
	ID   uint64
	Last bool
	Err  string
	Data []byte
}

func appendResult(a *wire.Appender, r resultPayload) {
	a.Uvarint(r.ID)
	a.Bool(r.Last)
	a.String(r.Err)
	a.Blob(r.Data)
}

func decodeResult(data []byte) (resultPayload, error) {
	var r resultPayload
	c := wire.CursorOf(data)
	var err error
	if r.ID, err = c.Uvarint(); err != nil {
		return r, fmt.Errorf("%w: result id: %v", ErrFrame, err)
	}
	last, err := c.Byte()
	if err != nil {
		return r, fmt.Errorf("%w: result last flag: %v", ErrFrame, err)
	}
	if last > 1 {
		return r, fmt.Errorf("%w: result last flag %#x", ErrFrame, last)
	}
	r.Last = last != 0
	msg, err := c.View()
	if err != nil {
		return r, fmt.Errorf("%w: result error: %v", ErrFrame, err)
	}
	r.Err = string(msg)
	chunk, err := c.Blob()
	if err != nil {
		return r, fmt.Errorf("%w: result data: %v", ErrFrame, err)
	}
	r.Data = chunk
	if err := c.Done(); err != nil {
		return r, fmt.Errorf("%w: result trailer: %v", ErrFrame, err)
	}
	return r, nil
}

// fetchPayload asks for a stored bundle by content digest.
type fetchPayload struct {
	Digest string // lowercase hex SHA-256, as carried by ACK frames
}

func appendFetch(a *wire.Appender, f fetchPayload) { a.String(f.Digest) }

func decodeFetch(data []byte) (fetchPayload, error) {
	var f fetchPayload
	c := wire.CursorOf(data)
	d, err := c.View()
	if err != nil {
		return f, fmt.Errorf("%w: fetch digest: %v", ErrFrame, err)
	}
	if len(d) != 2*digestSize {
		return f, fmt.Errorf("%w: fetch digest is %d chars, want %d", ErrFrame, len(d), 2*digestSize)
	}
	f.Digest = string(d)
	if err := c.Done(); err != nil {
		return f, fmt.Errorf("%w: fetch trailer: %v", ErrFrame, err)
	}
	return f, nil
}
