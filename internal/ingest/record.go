package ingest

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
)

// RecordWorkloadStream records the named catalogue workload (or
// "fuzz-<seed>" random program) locally and returns its segmented
// stream image — the upload payload the load generator and benchmarks
// feed through the ingest path. The recording streams with a flush
// cadence and flight-recorder checkpoints so the server's verification
// replay can partition it across workers.
func RecordWorkloadStream(name string, threads int, seed uint64) ([]byte, error) {
	prog, err := programByName(name, threads)
	if err != nil {
		return nil, err
	}
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Cores = 2
	cfg.Threads = threads
	cfg.Seed = seed
	cfg.KernelSeed = seed + 1000
	cfg.FlushEveryChunks = 8
	cfg.CheckpointEveryInstrs = 2000
	var buf bytes.Buffer
	if _, err := core.StreamRecord(prog, cfg, &buf); err != nil {
		return nil, fmt.Errorf("ingest: record %s: %w", name, err)
	}
	return buf.Bytes(), nil
}
