// Package ingest is the recording-as-a-service fleet endpoint: a TCP
// server that accepts segmented log streams from many concurrent
// recorders, shards them by replay-sphere (tenant) ID onto per-shard
// appenders, applies credit-based backpressure, and lands every upload
// as a crash-consistent, content-addressed bundle that a background
// verifier pool then salvages and prefix-replays.
//
// Wire protocol (little-endian), one length-prefixed frame at a time:
//
//	frame := plen u32 | kind u8 | payload[plen]
//
// A session is: client HELLO, server WELCOME (granting the initial
// credit), then DATA frames carrying raw segmented-stream bytes — the
// client may keep at most its granted credit in flight; the server
// returns credit with GRANT frames as the owning shard consumes each
// DATA frame — and a FINISH frame carrying the stream's SHA-256. The
// server answers ACK (bundle digest, stored or duplicate) or ERROR
// (typed code plus a retryable bit: an overloaded shard sheds the
// upload and tells the recorder to come back later).
//
// The payload codecs ride the shared internal/wire layer, and the
// per-shard appenders assemble uploads in pooled wire buffers — the
// same flush path the recorder's own segment writer uses.
package ingest

import (
	"fmt"
	"io"

	"repro/internal/wire"
)

// FrameKind tags a frame's payload type.
type FrameKind uint8

// Frame kinds. Client-to-server kinds first, then server-to-client.
const (
	// FrameHello opens a session: protocol version, tenant ID, size hint.
	FrameHello FrameKind = 1
	// FrameData carries a run of raw segmented-stream bytes.
	FrameData FrameKind = 2
	// FrameFinish ends an upload with the SHA-256 of all its bytes.
	FrameFinish FrameKind = 3
	// FrameWelcome acknowledges HELLO and grants the initial credit.
	FrameWelcome FrameKind = 4
	// FrameGrant returns consumed credit (bytes) to the client.
	FrameGrant FrameKind = 5
	// FrameAck confirms a stored (or deduplicated) bundle.
	FrameAck FrameKind = 6
	// FrameError rejects the session with a typed, possibly retryable code.
	FrameError FrameKind = 7

	// v3 kinds: compressed data plane and the fleet job plane.

	// FrameDataZ carries a block-compressed run of segmented-stream bytes
	// with a CRC over the on-wire block. Only valid once both sides
	// negotiated v3.
	FrameDataZ FrameKind = 8
	// FrameAttach opens a fleet session (worker or submitter) instead of
	// an upload. Answered by WELCOME.
	FrameAttach FrameKind = 9
	// FrameJob carries one job envelope: submitter to server, server to
	// worker.
	FrameJob FrameKind = 10
	// FrameResult carries one job's result (possibly chunked): worker to
	// server, server to submitter.
	FrameResult FrameKind = 11
	// FrameFetch opens a blob-fetch session: a worker asks for a stored
	// bundle by digest and the server streams DATA frames plus a FINISH.
	FrameFetch FrameKind = 12

	// frameKindMax is the highest kind this build understands.
	frameKindMax = FrameFetch
)

// String names the kind.
func (k FrameKind) String() string {
	switch k {
	case FrameHello:
		return "hello"
	case FrameData:
		return "data"
	case FrameFinish:
		return "finish"
	case FrameWelcome:
		return "welcome"
	case FrameGrant:
		return "grant"
	case FrameAck:
		return "ack"
	case FrameError:
		return "error"
	case FrameDataZ:
		return "dataz"
	case FrameAttach:
		return "attach"
	case FrameJob:
		return "job"
	case FrameResult:
		return "result"
	case FrameFetch:
		return "fetch"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

const (
	// protoVersionMin and protoVersionMax bound the ingest protocol
	// versions spoken by this package. v2 is identical to v1 on the wire
	// — every payload already carries trailer checks, so nothing needed
	// to change — but negotiating it proved the HELLO/WELCOME version
	// path end to end before v3 depended on it. v3 adds the compressed
	// data plane (DATAZ frames on uploads, used only when both sides
	// negotiated v3) and the fleet job plane (ATTACH/JOB/RESULT/FETCH).
	// The client offers the newest version it speaks; the server answers
	// WELCOME with min(offered, protoVersionMax) and rejects only offers
	// below its floor, so future clients degrade gracefully against old
	// fleets and vice versa.
	protoVersionMin = 1
	protoVersionMax = 3
	// frameHeaderSize is plen u32 + kind u8.
	frameHeaderSize = 4 + 1
	// maxFramePayload bounds one frame; longer plen fields are treated as
	// protocol corruption rather than allocated.
	maxFramePayload = 1 << 20
	// digestSize is the SHA-256 length carried by FINISH frames.
	digestSize = 32
	// maxTenantLen bounds tenant IDs (a replay-sphere name, not a blob).
	maxTenantLen = 256
)

// Frame protocol errors. ErrFrame marks structurally invalid frames;
// readers surface it (wrapped with detail) and close the session.
var ErrFrame = fmt.Errorf("ingest: invalid frame")

// appendFrame frames payload under kind into a.
func appendFrame(a *wire.Appender, kind FrameKind, payload []byte) {
	a.Grow(frameHeaderSize + len(payload))
	a.U32(uint32(len(payload)))
	a.Byte(byte(kind))
	a.Raw(payload)
}

// DecodeFrame parses the frame at the head of data and returns its kind,
// payload (aliasing data) and the remainder. io.ErrUnexpectedEOF reports
// a torn frame; ErrFrame a structurally invalid one.
func DecodeFrame(data []byte) (kind FrameKind, payload, rest []byte, err error) {
	if len(data) < frameHeaderSize {
		return 0, nil, data, io.ErrUnexpectedEOF
	}
	plen := uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24
	if plen > maxFramePayload {
		return 0, nil, data, fmt.Errorf("%w: %d-byte payload exceeds %d", ErrFrame, plen, maxFramePayload)
	}
	kind = FrameKind(data[4])
	if kind < FrameHello || kind > frameKindMax {
		return 0, nil, data, fmt.Errorf("%w: unknown kind %d", ErrFrame, data[4])
	}
	end := frameHeaderSize + int(plen)
	if len(data) < end {
		return 0, nil, data, io.ErrUnexpectedEOF
	}
	return kind, data[frameHeaderSize:end], data[end:], nil
}

// readFrame reads one frame from r. The payload is freshly allocated —
// frame readers hand payloads across goroutines (connection handler to
// shard worker), so they must not share a scratch buffer.
func readFrame(r io.Reader) (FrameKind, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	plen := uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24
	if plen > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: %d-byte payload exceeds %d", ErrFrame, plen, maxFramePayload)
	}
	kind := FrameKind(hdr[4])
	if kind < FrameHello || kind > frameKindMax {
		return 0, nil, fmt.Errorf("%w: unknown kind %d", ErrFrame, hdr[4])
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return kind, payload, nil
}

// helloPayload opens a session.
type helloPayload struct {
	Version  byte
	Tenant   string
	SizeHint uint64 // declared upload size in bytes; 0 when unknown
}

func appendHello(a *wire.Appender, h helloPayload) {
	a.Byte(h.Version)
	a.String(h.Tenant)
	a.Uvarint(h.SizeHint)
}

func decodeHello(data []byte) (helloPayload, error) {
	var h helloPayload
	c := wire.CursorOf(data)
	b, err := c.Byte()
	if err != nil {
		return h, fmt.Errorf("%w: hello: %v", ErrFrame, err)
	}
	h.Version = b
	tenant, err := c.View()
	if err != nil {
		return h, fmt.Errorf("%w: hello tenant: %v", ErrFrame, err)
	}
	if len(tenant) == 0 || len(tenant) > maxTenantLen {
		return h, fmt.Errorf("%w: tenant length %d", ErrFrame, len(tenant))
	}
	h.Tenant = string(tenant)
	if h.SizeHint, err = c.Uvarint(); err != nil {
		return h, fmt.Errorf("%w: hello size hint: %v", ErrFrame, err)
	}
	if err := c.Done(); err != nil {
		return h, fmt.Errorf("%w: hello trailer: %v", ErrFrame, err)
	}
	return h, nil
}

// welcomePayload acknowledges HELLO.
type welcomePayload struct {
	Version byte
	Credit  uint64 // initial in-flight byte allowance
}

func appendWelcome(a *wire.Appender, w welcomePayload) {
	a.Byte(w.Version)
	a.Uvarint(w.Credit)
}

func decodeWelcome(data []byte) (welcomePayload, error) {
	var w welcomePayload
	c := wire.CursorOf(data)
	b, err := c.Byte()
	if err != nil {
		return w, fmt.Errorf("%w: welcome: %v", ErrFrame, err)
	}
	w.Version = b
	if w.Credit, err = c.Uvarint(); err != nil {
		return w, fmt.Errorf("%w: welcome credit: %v", ErrFrame, err)
	}
	if err := c.Done(); err != nil {
		return w, fmt.Errorf("%w: welcome trailer: %v", ErrFrame, err)
	}
	return w, nil
}

// grantPayload returns consumed credit.
type grantPayload struct {
	Bytes uint64
}

func appendGrant(a *wire.Appender, g grantPayload) { a.Uvarint(g.Bytes) }

func decodeGrant(data []byte) (grantPayload, error) {
	var g grantPayload
	c := wire.CursorOf(data)
	var err error
	if g.Bytes, err = c.Uvarint(); err != nil {
		return g, fmt.Errorf("%w: grant: %v", ErrFrame, err)
	}
	if err := c.Done(); err != nil {
		return g, fmt.Errorf("%w: grant trailer: %v", ErrFrame, err)
	}
	return g, nil
}

// finishPayload ends an upload.
type finishPayload struct {
	Digest [digestSize]byte
}

func appendFinish(a *wire.Appender, f finishPayload) { a.Raw(f.Digest[:]) }

func decodeFinish(data []byte) (finishPayload, error) {
	var f finishPayload
	if len(data) != digestSize {
		return f, fmt.Errorf("%w: finish digest is %d bytes, want %d", ErrFrame, len(data), digestSize)
	}
	copy(f.Digest[:], data)
	return f, nil
}

// ackPayload confirms a stored upload.
type ackPayload struct {
	Digest    string // lowercase hex SHA-256 — the bundle's storage name
	Duplicate bool   // true when the bundle was already in the store
}

func appendAck(a *wire.Appender, k ackPayload) {
	a.String(k.Digest)
	a.Bool(k.Duplicate)
}

func decodeAck(data []byte) (ackPayload, error) {
	var k ackPayload
	c := wire.CursorOf(data)
	d, err := c.View()
	if err != nil {
		return k, fmt.Errorf("%w: ack digest: %v", ErrFrame, err)
	}
	if len(d) != 2*digestSize {
		return k, fmt.Errorf("%w: ack digest is %d chars, want %d", ErrFrame, len(d), 2*digestSize)
	}
	k.Digest = string(d)
	b, err := c.Byte()
	if err != nil {
		return k, fmt.Errorf("%w: ack flags: %v", ErrFrame, err)
	}
	if b > 1 {
		return k, fmt.Errorf("%w: ack flags %#x", ErrFrame, b)
	}
	k.Duplicate = b != 0
	if err := c.Done(); err != nil {
		return k, fmt.Errorf("%w: ack trailer: %v", ErrFrame, err)
	}
	return k, nil
}

// ErrorCode classifies server-side rejections.
type ErrorCode uint8

// Error codes carried by FrameError.
const (
	// CodeOverloaded sheds a session because the owning shard's queue
	// stayed full past the shed timeout. Always retryable.
	CodeOverloaded ErrorCode = 1
	// CodeProtocol reports a malformed or out-of-order frame.
	CodeProtocol ErrorCode = 2
	// CodeDigestMismatch reports a FINISH digest that does not match the
	// received bytes (the upload was corrupted in flight).
	CodeDigestMismatch ErrorCode = 3
	// CodeTooLarge rejects an upload exceeding the server's size cap.
	CodeTooLarge ErrorCode = 4
	// CodeShuttingDown sheds a session because the server is draining.
	CodeShuttingDown ErrorCode = 5
	// CodeNotFound reports a FETCH for a digest the store does not hold.
	CodeNotFound ErrorCode = 6
)

// String names the code.
func (c ErrorCode) String() string {
	switch c {
	case CodeOverloaded:
		return "overloaded"
	case CodeProtocol:
		return "protocol"
	case CodeDigestMismatch:
		return "digest-mismatch"
	case CodeTooLarge:
		return "too-large"
	case CodeShuttingDown:
		return "shutting-down"
	case CodeNotFound:
		return "not-found"
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}

// errorPayload rejects a session.
type errorPayload struct {
	Code      ErrorCode
	Retryable bool
	Msg       string
}

func appendError(a *wire.Appender, e errorPayload) {
	a.Byte(byte(e.Code))
	a.Bool(e.Retryable)
	a.String(e.Msg)
}

func decodeError(data []byte) (errorPayload, error) {
	var e errorPayload
	c := wire.CursorOf(data)
	b, err := c.Byte()
	if err != nil {
		return e, fmt.Errorf("%w: error code: %v", ErrFrame, err)
	}
	e.Code = ErrorCode(b)
	r, err := c.Byte()
	if err != nil {
		return e, fmt.Errorf("%w: error flags: %v", ErrFrame, err)
	}
	if r > 1 {
		return e, fmt.Errorf("%w: error flags %#x", ErrFrame, r)
	}
	e.Retryable = r != 0
	msg, err := c.View()
	if err != nil {
		return e, fmt.Errorf("%w: error message: %v", ErrFrame, err)
	}
	e.Msg = string(msg)
	if err := c.Done(); err != nil {
		return e, fmt.Errorf("%w: error trailer: %v", ErrFrame, err)
	}
	return e, nil
}
