package ingest

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/dispatch"
	"repro/internal/wire"
)

// Payload selectors for FuzzJobFrame's first fuzz argument.
const (
	fuzzAttach = iota
	fuzzJob
	fuzzResult
	fuzzFetch
	fuzzDataZ
	fuzzDispatchJob
	fuzzDispatchResult
	fuzzKinds
)

// FuzzJobFrame throws arbitrary bytes at every v3 payload codec — the
// fleet job plane (ATTACH/JOB/RESULT/FETCH), the compressed data plane
// (DATAZ), and the dispatch job/result envelopes that ride inside JOB
// and RESULT bodies. Invariants: no panic, malformed input yields a
// typed error, and any payload that decodes survives an encode→decode
// round trip with its values intact.
func FuzzJobFrame(f *testing.F) {
	seed := func(sel byte, build func(a *wire.Appender)) {
		var a wire.Appender
		build(&a)
		f.Add(sel, a.Buf)
	}
	seed(fuzzAttach, func(a *wire.Appender) {
		appendAttach(a, attachPayload{Version: 3, Role: roleWorker, Slots: 4})
	})
	seed(fuzzAttach, func(a *wire.Appender) {
		appendAttach(a, attachPayload{Version: 3, Role: roleSubmitter})
	})
	seed(fuzzJob, func(a *wire.Appender) {
		appendJobFrame(a, jobPayload{ID: 7, Body: []byte("job-body")})
	})
	seed(fuzzResult, func(a *wire.Appender) {
		appendResult(a, resultPayload{ID: 7, Last: true, Err: "boom", Data: []byte("result")})
	})
	seed(fuzzResult, func(a *wire.Appender) {
		appendResult(a, resultPayload{ID: 9, Data: bytes.Repeat([]byte("x"), 64)})
	})
	seed(fuzzFetch, func(a *wire.Appender) {
		appendFetch(a, fetchPayload{Digest: strings.Repeat("ab", digestSize)})
	})
	seed(fuzzDataZ, func(a *wire.Appender) {
		appendDataZ(a, bytes.Repeat([]byte("stream bytes "), 100))
	})
	seed(fuzzDataZ, func(a *wire.Appender) { appendDataZ(a, []byte("incompressible?")) })
	seed(fuzzDispatchJob, func(a *wire.Appender) {
		dispatch.AppendJob(a, dispatch.Job{
			Kind: dispatch.JobReplayInterval, Digest: strings.Repeat("cd", digestSize),
			Payload: []byte("interval params"),
		})
	})
	seed(fuzzDispatchResult, func(a *wire.Appender) {
		dispatch.AppendJobResult(a, dispatch.JobResult{Payload: []byte("interval state")})
	})
	// Hostile shapes: truncated varints, a CRC over nothing, huge lengths.
	f.Add(byte(fuzzJob), []byte{0xff})
	f.Add(byte(fuzzDataZ), []byte{1, 2, 3})
	f.Add(byte(fuzzResult), []byte{0, 2})
	f.Add(byte(fuzzDispatchJob), []byte{1, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		checkErr := func(err error) bool {
			if err == nil {
				return false
			}
			if !errors.Is(err, ErrFrame) {
				t.Fatalf("malformed payload gave an untyped error: %v", err)
			}
			return true
		}
		switch sel % fuzzKinds {
		case fuzzAttach:
			at, err := decodeAttach(data)
			if checkErr(err) {
				return
			}
			var a wire.Appender
			appendAttach(&a, at)
			if got, err := decodeAttach(a.Buf); err != nil || got != at {
				t.Fatalf("attach round trip: %+v, %v", got, err)
			}
		case fuzzJob:
			j, err := decodeJobFrame(data)
			if checkErr(err) {
				return
			}
			var a wire.Appender
			appendJobFrame(&a, j)
			if got, err := decodeJobFrame(a.Buf); err != nil || got.ID != j.ID || !bytes.Equal(got.Body, j.Body) {
				t.Fatalf("job round trip: %+v, %v", got, err)
			}
		case fuzzResult:
			r, err := decodeResult(data)
			if checkErr(err) {
				return
			}
			var a wire.Appender
			appendResult(&a, r)
			got, err := decodeResult(a.Buf)
			if err != nil || got.ID != r.ID || got.Last != r.Last || got.Err != r.Err || !bytes.Equal(got.Data, r.Data) {
				t.Fatalf("result round trip: %+v, %v", got, err)
			}
		case fuzzFetch:
			fp, err := decodeFetch(data)
			if checkErr(err) {
				return
			}
			var a wire.Appender
			appendFetch(&a, fp)
			if got, err := decodeFetch(a.Buf); err != nil || got != fp {
				t.Fatalf("fetch round trip: %+v, %v", got, err)
			}
		case fuzzDataZ:
			raw, err := decodeDataZ(data)
			if checkErr(err) {
				return
			}
			var a wire.Appender
			appendDataZ(&a, raw)
			if got, err := decodeDataZ(a.Buf); err != nil || !bytes.Equal(got, raw) {
				t.Fatalf("dataz round trip: %d bytes, %v", len(got), err)
			}
		case fuzzDispatchJob:
			j, err := dispatch.DecodeJob(data)
			if err != nil {
				return // dispatch owns its error vocabulary
			}
			var a wire.Appender
			dispatch.AppendJob(&a, j)
			got, err := dispatch.DecodeJob(a.Buf)
			if err != nil || got.Kind != j.Kind || got.Digest != j.Digest || !bytes.Equal(got.Payload, j.Payload) {
				t.Fatalf("dispatch job round trip: %+v, %v", got, err)
			}
		case fuzzDispatchResult:
			r, err := dispatch.DecodeJobResult(data)
			if err != nil {
				return
			}
			var a wire.Appender
			dispatch.AppendJobResult(&a, r)
			got, err := dispatch.DecodeJobResult(a.Buf)
			if err != nil || got.Err != r.Err || !bytes.Equal(got.Payload, r.Payload) {
				t.Fatalf("dispatch result round trip: %+v, %v", got, err)
			}
		}
	})
}
