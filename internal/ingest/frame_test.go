package ingest

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/wire"
)

// frameBytes renders one framed payload.
func frameBytes(kind FrameKind, build func(*wire.Appender)) []byte {
	var p wire.Appender
	if build != nil {
		build(&p)
	}
	var f wire.Appender
	appendFrame(&f, kind, p.Buf)
	return f.Buf
}

func TestFramePayloadRoundTrip(t *testing.T) {
	hello := helloPayload{Version: protoVersionMax, Tenant: "sphere-7", SizeHint: 1 << 20}
	welcome := welcomePayload{Version: protoVersionMax, Credit: 256 << 10}
	grant := grantPayload{Bytes: 65536}
	var fin finishPayload
	for i := range fin.Digest {
		fin.Digest[i] = byte(i)
	}
	ack := ackPayload{Digest: string(bytes.Repeat([]byte("ab"), digestSize)), Duplicate: true}
	srvErr := errorPayload{Code: CodeOverloaded, Retryable: true, Msg: "shard queue full"}

	cases := []struct {
		kind  FrameKind
		build func(*wire.Appender)
		check func(t *testing.T, payload []byte)
	}{
		{FrameHello, func(a *wire.Appender) { appendHello(a, hello) }, func(t *testing.T, p []byte) {
			got, err := decodeHello(p)
			if err != nil || got != hello {
				t.Fatalf("hello round trip: %+v, %v", got, err)
			}
		}},
		{FrameWelcome, func(a *wire.Appender) { appendWelcome(a, welcome) }, func(t *testing.T, p []byte) {
			got, err := decodeWelcome(p)
			if err != nil || got != welcome {
				t.Fatalf("welcome round trip: %+v, %v", got, err)
			}
		}},
		{FrameGrant, func(a *wire.Appender) { appendGrant(a, grant) }, func(t *testing.T, p []byte) {
			got, err := decodeGrant(p)
			if err != nil || got != grant {
				t.Fatalf("grant round trip: %+v, %v", got, err)
			}
		}},
		{FrameFinish, func(a *wire.Appender) { appendFinish(a, fin) }, func(t *testing.T, p []byte) {
			got, err := decodeFinish(p)
			if err != nil || got != fin {
				t.Fatalf("finish round trip: %+v, %v", got, err)
			}
		}},
		{FrameAck, func(a *wire.Appender) { appendAck(a, ack) }, func(t *testing.T, p []byte) {
			got, err := decodeAck(p)
			if err != nil || got != ack {
				t.Fatalf("ack round trip: %+v, %v", got, err)
			}
		}},
		{FrameError, func(a *wire.Appender) { appendError(a, srvErr) }, func(t *testing.T, p []byte) {
			got, err := decodeError(p)
			if err != nil || got != srvErr {
				t.Fatalf("error round trip: %+v, %v", got, err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			raw := frameBytes(tc.kind, tc.build)
			kind, payload, rest, err := DecodeFrame(raw)
			if err != nil || kind != tc.kind || len(rest) != 0 {
				t.Fatalf("DecodeFrame: kind %v rest %d err %v", kind, len(rest), err)
			}
			tc.check(t, payload)

			// The stream reader must agree byte-for-byte with the slice
			// decoder.
			rk, rp, err := readFrame(bytes.NewReader(raw))
			if err != nil || rk != tc.kind || !bytes.Equal(rp, payload) {
				t.Fatalf("readFrame disagrees with DecodeFrame: %v %v", rk, err)
			}
		})
	}
}

func TestDecodeFrameFaults(t *testing.T) {
	valid := frameBytes(FrameGrant, func(a *wire.Appender) { appendGrant(a, grantPayload{Bytes: 9}) })

	// Torn at every prefix: always io.ErrUnexpectedEOF, never a panic.
	for cut := 0; cut < len(valid); cut++ {
		if _, _, _, err := DecodeFrame(valid[:cut]); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: %v, want unexpected EOF", cut, err)
		}
	}
	// Oversize plen is corruption, not an allocation request.
	huge := append([]byte{0xff, 0xff, 0xff, 0xff}, valid[4:]...)
	if _, _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversize plen: %v, want ErrFrame", err)
	}
	// Unknown frame kind.
	bad := append([]byte(nil), valid...)
	bad[4] = 0x7f
	if _, _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrame) {
		t.Fatalf("bad kind: %v, want ErrFrame", err)
	}
	// Same faults through the stream reader.
	if _, _, err := readFrame(bytes.NewReader(valid[:3])); err == nil {
		t.Fatal("torn header read succeeded")
	}
	if _, _, err := readFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversize plen via reader: %v", err)
	}
}

func TestDecodePayloadFaults(t *testing.T) {
	if _, err := decodeHello(nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("empty hello: %v", err)
	}
	// Empty tenant is rejected — the tenant keys sharding and verdicts.
	var a wire.Appender
	appendHello(&a, helloPayload{Version: protoVersionMax, Tenant: "", SizeHint: 0})
	if _, err := decodeHello(a.Buf); !errors.Is(err, ErrFrame) {
		t.Fatalf("empty tenant: %v", err)
	}
	if _, err := decodeFinish(make([]byte, digestSize-1)); !errors.Is(err, ErrFrame) {
		t.Fatalf("short finish digest: %v", err)
	}
	// Trailing garbage after a well-formed payload is rejected.
	var g wire.Appender
	appendGrant(&g, grantPayload{Bytes: 1})
	g.Byte(0xcc)
	if _, err := decodeGrant(g.Buf); !errors.Is(err, ErrFrame) {
		t.Fatalf("grant trailer: %v", err)
	}
}

// FuzzIngestFrame throws arbitrary bytes at the frame layer the ingest
// server reads off the network: DecodeFrame first, then every per-kind
// payload decoder for frames that parse. Invariants: no panic, no
// allocation driven by a hostile length field, and any frame that
// decodes re-encodes byte-identically through appendFrame.
func FuzzIngestFrame(f *testing.F) {
	f.Add(frameBytes(FrameHello, func(a *wire.Appender) {
		appendHello(a, helloPayload{Version: protoVersionMax, Tenant: "sphere-0", SizeHint: 4096})
	}))
	f.Add(frameBytes(FrameWelcome, func(a *wire.Appender) {
		appendWelcome(a, welcomePayload{Version: protoVersionMax, Credit: 1 << 18})
	}))
	f.Add(frameBytes(FrameData, func(a *wire.Appender) { a.Raw([]byte("QRSGstream-bytes")) }))
	f.Add(frameBytes(FrameGrant, func(a *wire.Appender) { appendGrant(a, grantPayload{Bytes: 65536}) }))
	f.Add(frameBytes(FrameFinish, func(a *wire.Appender) { a.Raw(make([]byte, digestSize)) }))
	f.Add(frameBytes(FrameAck, func(a *wire.Appender) {
		appendAck(a, ackPayload{Digest: string(bytes.Repeat([]byte("0"), 2*digestSize))})
	}))
	f.Add(frameBytes(FrameError, func(a *wire.Appender) {
		appendError(a, errorPayload{Code: CodeOverloaded, Retryable: true, Msg: "shed"})
	}))
	// Hostile shapes: oversize plen, torn header, torn payload, bad kind.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1})
	f.Add([]byte{4, 0, 0})
	f.Add([]byte{4, 0, 0, 0, 2, 0xaa})
	f.Add([]byte{0, 0, 0, 0, 99})

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, rest, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrFrame) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("unexpected decode error class: %v", err)
			}
			return
		}
		if len(payload) > maxFramePayload {
			t.Fatalf("decoded payload of %d bytes exceeds the frame cap", len(payload))
		}
		var re wire.Appender
		appendFrame(&re, kind, payload)
		if !bytes.Equal(re.Buf, data[:len(data)-len(rest)]) {
			t.Fatal("frame did not re-encode byte-identically")
		}

		// Any payload that decodes must survive an encode→decode round
		// trip with its values intact. (Byte-identity is not asserted for
		// varint-bearing payloads: binary.Uvarint tolerates non-minimal
		// encodings the Appender never emits.)
		switch kind {
		case FrameHello:
			if h, err := decodeHello(payload); err == nil {
				var a wire.Appender
				appendHello(&a, h)
				if got, err := decodeHello(a.Buf); err != nil || got != h {
					t.Fatalf("hello value round trip: %+v, %v", got, err)
				}
			}
		case FrameWelcome:
			if w, err := decodeWelcome(payload); err == nil {
				var a wire.Appender
				appendWelcome(&a, w)
				if got, err := decodeWelcome(a.Buf); err != nil || got != w {
					t.Fatalf("welcome value round trip: %+v, %v", got, err)
				}
			}
		case FrameGrant:
			if g, err := decodeGrant(payload); err == nil {
				var a wire.Appender
				appendGrant(&a, g)
				if got, err := decodeGrant(a.Buf); err != nil || got != g {
					t.Fatalf("grant value round trip: %+v, %v", got, err)
				}
			}
		case FrameFinish:
			if fin, err := decodeFinish(payload); err == nil {
				var a wire.Appender
				appendFinish(&a, fin)
				if got, err := decodeFinish(a.Buf); err != nil || got != fin {
					t.Fatalf("finish value round trip: %v", err)
				}
			}
		case FrameAck:
			if k, err := decodeAck(payload); err == nil {
				var a wire.Appender
				appendAck(&a, k)
				if got, err := decodeAck(a.Buf); err != nil || got != k {
					t.Fatalf("ack value round trip: %+v, %v", got, err)
				}
			}
		case FrameError:
			if e, err := decodeError(payload); err == nil {
				var a wire.Appender
				appendError(&a, e)
				if got, err := decodeError(a.Buf); err != nil || got != e {
					t.Fatalf("error value round trip: %+v, %v", got, err)
				}
			}
		}
	})
}
