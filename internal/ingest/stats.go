package ingest

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/report"
)

// VerdictStatus classifies what the verifier pool concluded about one
// stored bundle.
type VerdictStatus uint8

// Verdict statuses.
const (
	// StatusAccepted: the bundle salvaged complete and deterministic
	// replay reproduced the reference final state bit-for-bit.
	StatusAccepted VerdictStatus = iota + 1
	// StatusTorn: the bundle is a salvageable prefix (the upload or the
	// recording behind it was cut short); the surviving prefix replayed
	// cleanly up to the salvage horizon.
	StatusTorn
	// StatusDiverged: replay of the bundle failed or did not reproduce the
	// recorded state — the recording is unusable as evidence.
	StatusDiverged
	// StatusUnverifiable: the bundle's program is not in this server's
	// workload catalogue, so it was stored but could not be replayed.
	StatusUnverifiable
)

// String names the status.
func (s VerdictStatus) String() string {
	switch s {
	case StatusAccepted:
		return "accepted"
	case StatusTorn:
		return "torn"
	case StatusDiverged:
		return "diverged"
	case StatusUnverifiable:
		return "unverifiable"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Verdict is the verifier pool's published conclusion for one stored
// bundle. MemChecksum and Steps carry the replayed machine's fingerprint
// so an external verification of the same bundle can be compared
// bit-for-bit against the server's.
type Verdict struct {
	Tenant      string
	Digest      string
	Status      VerdictStatus
	Program     string // bundle's program name
	Threads     int
	Steps       uint64 // instructions retired by the verification replay
	MemChecksum uint64 // FNV-64a of replayed memory, 0 unless replayed
	Detail      string // human-readable cause for torn/diverged/unverifiable
}

// Counters is a point-in-time snapshot of the server's monotonic
// counters plus the current queue gauges.
type Counters struct {
	Sessions      uint64 // sessions accepted (HELLO seen)
	Accepted      uint64 // uploads acked (stored or deduplicated)
	Duplicates    uint64 // acked uploads that were already in the store
	Shed          uint64 // sessions shed with CodeOverloaded
	Aborted       uint64 // sessions dropped before FINISH (torn uploads)
	Rejected      uint64 // sessions rejected for protocol/size/digest faults
	BytesIngested uint64 // payload bytes accepted into shard queues (decoded)
	// FramesCompressed counts DATAZ frames accepted — nonzero only when
	// v3 clients found compression worthwhile.
	FramesCompressed uint64
	VerdictsBy       map[VerdictStatus]uint64
	VerifyQueue      int // bundles waiting for a verifier
	ShardQueue       int // data messages waiting across all shards
}

// counters is the live atomic form behind Counters.
type counters struct {
	sessions         atomic.Uint64
	accepted         atomic.Uint64
	duplicates       atomic.Uint64
	shed             atomic.Uint64
	aborted          atomic.Uint64
	rejected         atomic.Uint64
	bytesIngested    atomic.Uint64
	framesCompressed atomic.Uint64
}

// verdictBoard publishes verifier conclusions: the latest verdict per
// bundle and rolled-up per-tenant status counts.
type verdictBoard struct {
	mu        sync.Mutex
	byDigest  map[string]Verdict // keyed tenant+"/"+digest
	pending   map[string]bool    // claimed but not yet published
	byTenant  map[string]map[VerdictStatus]uint64
	byStatus  map[VerdictStatus]uint64
	published uint64
}

func newVerdictBoard() *verdictBoard {
	return &verdictBoard{
		byDigest: make(map[string]Verdict),
		pending:  make(map[string]bool),
		byTenant: make(map[string]map[VerdictStatus]uint64),
		byStatus: make(map[VerdictStatus]uint64),
	}
}

// claim registers intent to verify tenant's bundle. It returns false
// when a verdict is already published or a job already in flight, so a
// deduplicated re-upload of the same bundle by the same tenant does not
// replay it twice, while each *distinct* tenant storing the same bytes
// still gets its own verdict.
func (b *verdictBoard) claim(tenant, digest string) bool {
	key := tenant + "/" + digest
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.byDigest[key]; ok {
		return false
	}
	if b.pending[key] {
		return false
	}
	b.pending[key] = true
	return true
}

func (b *verdictBoard) publish(v Verdict) {
	b.mu.Lock()
	defer b.mu.Unlock()
	key := v.Tenant + "/" + v.Digest
	delete(b.pending, key)
	b.byDigest[key] = v
	t := b.byTenant[v.Tenant]
	if t == nil {
		t = make(map[VerdictStatus]uint64)
		b.byTenant[v.Tenant] = t
	}
	t[v.Status]++
	b.byStatus[v.Status]++
	b.published++
}

// lookup returns the verdict published for tenant's bundle, if any.
func (b *verdictBoard) lookup(tenant, digest string) (Verdict, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.byDigest[tenant+"/"+digest]
	return v, ok
}

// Verdict returns the published verdict for tenant's bundle, if any.
func (s *Server) Verdict(tenant, digest string) (Verdict, bool) {
	return s.verdicts.lookup(tenant, digest)
}

// Counters snapshots the server's counters and queue gauges.
func (s *Server) Counters() Counters {
	c := Counters{
		Sessions:         s.ctrs.sessions.Load(),
		Accepted:         s.ctrs.accepted.Load(),
		Duplicates:       s.ctrs.duplicates.Load(),
		Shed:             s.ctrs.shed.Load(),
		Aborted:          s.ctrs.aborted.Load(),
		Rejected:         s.ctrs.rejected.Load(),
		BytesIngested:    s.ctrs.bytesIngested.Load(),
		FramesCompressed: s.ctrs.framesCompressed.Load(),
		VerdictsBy:       make(map[VerdictStatus]uint64),
		VerifyQueue:      s.verifier.depth(),
	}
	for _, sh := range s.shards {
		c.ShardQueue += len(sh.ch)
	}
	s.verdicts.mu.Lock()
	for st, n := range s.verdicts.byStatus {
		c.VerdictsBy[st] = n
	}
	s.verdicts.mu.Unlock()
	return c
}

// Statsz renders the server's counters and per-tenant verdict rollup as
// the /statsz page body: a counter listing followed by a tenant table,
// both in the shared report layout.
func (s *Server) Statsz() string {
	c := s.Counters()
	kv := report.KV{Title: "ingest counters"}
	kv.AddUint("sessions", c.Sessions)
	kv.AddUint("uploads accepted", c.Accepted)
	kv.AddUint("uploads deduplicated", c.Duplicates)
	kv.AddUint("sessions shed (overload)", c.Shed)
	kv.AddUint("uploads aborted (torn)", c.Aborted)
	kv.AddUint("sessions rejected", c.Rejected)
	kv.AddUint("bytes ingested", c.BytesIngested)
	kv.Add("shard queue depth", fmt.Sprintf("%d", c.ShardQueue))
	kv.Add("verify queue depth", fmt.Sprintf("%d", c.VerifyQueue))
	for _, st := range []VerdictStatus{StatusAccepted, StatusTorn, StatusDiverged, StatusUnverifiable} {
		kv.AddUint("verdict "+st.String(), c.VerdictsBy[st])
	}

	t := report.Table{
		Title:   "verdicts by tenant",
		Columns: []string{"tenant", "accepted", "torn", "diverged", "unverifiable"},
	}
	s.verdicts.mu.Lock()
	tenants := make([]string, 0, len(s.verdicts.byTenant))
	for name := range s.verdicts.byTenant {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	for _, name := range tenants {
		row := s.verdicts.byTenant[name]
		t.AddRow(name,
			report.U(row[StatusAccepted]), report.U(row[StatusTorn]),
			report.U(row[StatusDiverged]), report.U(row[StatusUnverifiable]))
	}
	s.verdicts.mu.Unlock()
	return kv.String() + "\n" + t.String()
}
