package ingest

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// rawHello dials the server, sends a HELLO with the given version byte,
// and returns the first reply frame.
func rawHello(t *testing.T, addr string, version byte) (FrameKind, []byte) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	a := wire.GetAppender()
	defer wire.PutAppender(a)
	appendHello(a, helloPayload{Version: version, Tenant: "sphere-n", SizeHint: 64})
	fa := wire.GetAppender()
	defer wire.PutAppender(fa)
	appendFrame(fa, FrameHello, a.Buf)
	if _, err := conn.Write(fa.Buf); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := readFrame(conn)
	if err != nil {
		t.Fatalf("reading reply to v%d hello: %v", version, err)
	}
	return kind, payload
}

// TestHelloVersionNegotiation covers the protocol version handshake:
// every supported version is answered with itself, a future version is
// answered at the server's ceiling, and a below-floor version is
// rejected with a typed protocol error.
func TestHelloVersionNegotiation(t *testing.T) {
	s := startServer(t, nil)

	for _, tc := range []struct {
		offer byte
		want  byte
	}{
		{protoVersionMin, protoVersionMin}, // v1 recorder against a v2 fleet
		{protoVersionMax, protoVersionMax},
		{protoVersionMax + 7, protoVersionMax}, // future recorder: degrade, don't reject
	} {
		kind, payload := rawHello(t, s.Addr(), tc.offer)
		if kind != FrameWelcome {
			t.Fatalf("offer v%d: got %s frame, want welcome", tc.offer, kind)
		}
		w, err := decodeWelcome(payload)
		if err != nil {
			t.Fatalf("offer v%d: %v", tc.offer, err)
		}
		if w.Version != tc.want {
			t.Errorf("offer v%d: negotiated v%d, want v%d", tc.offer, w.Version, tc.want)
		}
	}

	kind, payload := rawHello(t, s.Addr(), 0)
	if kind != FrameError {
		t.Fatalf("offer v0: got %s frame, want error", kind)
	}
	ep, err := decodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Code != CodeProtocol || ep.Retryable {
		t.Errorf("offer v0: rejected with %s retryable=%v, want non-retryable protocol error", ep.Code, ep.Retryable)
	}
}

// TestClientNegotiatesAgainstV1Server pins the client half: a WELCOME
// carrying v1 (an old fleet) is accepted and recorded, while a version
// outside the client's range is refused.
func TestClientNegotiatesAgainstV1Server(t *testing.T) {
	for _, tc := range []struct {
		version byte
		ok      bool
	}{
		{protoVersionMin, true},
		{protoVersionMax, true},
		{0, false},
		{protoVersionMax + 1, false},
	} {
		srv, cli := net.Pipe()
		c := &Client{conn: cli, br: bufio.NewReader(cli), chunk: uploadChunk}
		go func() {
			kind, payload, err := readFrame(srv)
			if err != nil || kind != FrameHello {
				srv.Close()
				return
			}
			h, err := decodeHello(payload)
			if err != nil || h.Version != protoVersionMax {
				srv.Close()
				return
			}
			a := wire.GetAppender()
			defer wire.PutAppender(a)
			appendWelcome(a, welcomePayload{Version: tc.version, Credit: 1024})
			fa := wire.GetAppender()
			defer wire.PutAppender(fa)
			appendFrame(fa, FrameWelcome, a.Buf)
			srv.Write(fa.Buf)
		}()
		err := c.hello("sphere-n", 64)
		cli.Close()
		srv.Close()
		if tc.ok && err != nil {
			t.Errorf("welcome v%d: hello failed: %v", tc.version, err)
		}
		if tc.ok && c.version != tc.version {
			t.Errorf("welcome v%d: client recorded v%d", tc.version, c.version)
		}
		if !tc.ok && err == nil {
			t.Errorf("welcome v%d: client accepted an out-of-range version", tc.version)
		}
	}
}

// TestWriteFrameMarksUploadDead is the regression test for the shard
// lifecycle bug: writeFrame's contract says a failed write marks the
// upload dead, and the shard relies on that to stop assembling (and
// never ack) a session whose socket is gone.
func TestWriteFrameMarksUploadDead(t *testing.T) {
	s := startServer(t, nil)
	srv, cli := net.Pipe()
	cli.Close() // the peer vanished: every write must fail
	up := &upload{conn: srv, wmu: &sync.Mutex{}}
	if s.writeFrame(up, FrameGrant, []byte{1}) {
		t.Fatal("writeFrame reported success on a closed connection")
	}
	if !up.dead.Load() {
		t.Fatal("failed writeFrame did not mark the upload dead")
	}
	// A dead upload must stay inert through the shard's remaining work:
	// finishUpload on a dead session neither stores nor acks.
	before := s.ctrs.accepted.Load()
	up.buf = wire.GetAppender()
	defer wire.PutAppender(up.buf)
	s.finishUpload(up, [digestSize]byte{})
	if got := s.ctrs.accepted.Load(); got != before {
		t.Fatalf("dead upload was acked (accepted %d -> %d)", before, got)
	}
}
