package ingest

import (
	"bytes"
	"testing"
	"time"
)

// TestRetryDelayBoundedAndDeterministic pins the upload backoff policy:
// the delay grows exponentially but is capped at base<<backoffCapFactor,
// jitter keeps every delay inside [exp/2, exp), the schedule is a pure
// function of (tenant, attempt), and distinct tenants land on distinct
// points of the window so a shed burst does not re-converge.
func TestRetryDelayBoundedAndDeterministic(t *testing.T) {
	const base = 10 * time.Millisecond
	for attempt := 1; attempt <= 20; attempt++ {
		shift := attempt - 1
		if shift > backoffCapFactor {
			shift = backoffCapFactor
		}
		exp := base << shift
		d := retryDelay("sphere-a", attempt, base)
		if d < exp/2 || d >= exp {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d, exp/2, exp)
		}
		if d2 := retryDelay("sphere-a", attempt, base); d2 != d {
			t.Errorf("attempt %d: delay not deterministic (%v then %v)", attempt, d, d2)
		}
		if ceil := base << backoffCapFactor; d >= ceil {
			t.Errorf("attempt %d: delay %v at or above the cap %v", attempt, d, ceil)
		}
	}

	// Thirty-two tenants retrying the same attempt must not synchronize:
	// the jitter seed includes the tenant, so the delays spread out.
	distinct := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		distinct[retryDelay(string(rune('a'+i)), 4, base)] = true
	}
	if len(distinct) < 16 {
		t.Errorf("32 tenants share only %d distinct delays — retries would synchronize", len(distinct))
	}
}

// TestMixedVersionCompression covers the DATA-plane compression
// negotiation across protocol versions: a v3 pair compresses on the
// wire and still stores (and acks) the exact uploaded bytes, while
// either side capped at v2 silently falls back to plain DATA frames.
func TestMixedVersionCompression(t *testing.T) {
	// A synthetic, highly compressible payload: compression is
	// compress-iff-smaller per frame, so repetition guarantees the v3
	// path actually takes it.
	stream := bytes.Repeat([]byte("quickrec chunk log bytes "), 1<<12)

	upload := func(t *testing.T, s *Server, clientMax byte) string {
		t.Helper()
		c, err := Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if clientMax != 0 {
			c.SetMaxVersion(clientMax)
		}
		digest, dup, err := c.Upload("sphere-mix", stream)
		if err != nil || dup {
			t.Fatalf("upload: %s dup=%v err=%v", digest, dup, err)
		}
		stored, err := s.Store().Get(digest)
		if err != nil || !bytes.Equal(stored, stream) {
			t.Fatalf("stored bytes differ from upload: %v", err)
		}
		return digest
	}

	t.Run("v3-client-v3-server", func(t *testing.T) {
		s := startServer(t, nil)
		upload(t, s, 0)
		if n := s.Counters().FramesCompressed; n == 0 {
			t.Error("v3/v3 upload of compressible data compressed no frames")
		}
	})
	t.Run("v3-client-v2-server", func(t *testing.T) {
		s := startServer(t, func(cfg *Config) { cfg.MaxVersion = 2 })
		upload(t, s, 0)
		if n := s.Counters().FramesCompressed; n != 0 {
			t.Errorf("v2 server decoded %d compressed frames", n)
		}
	})
	t.Run("v2-client-v3-server", func(t *testing.T) {
		s := startServer(t, nil)
		upload(t, s, 2)
		if n := s.Counters().FramesCompressed; n != 0 {
			t.Errorf("v2 client produced %d compressed frames", n)
		}
	})
}
