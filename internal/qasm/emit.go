package qasm

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/workload"
)

// emit assembles one instruction statement onto the builder.
func (p *parser) emit(b *isa.Builder, s stmt) error {
	r := func(i int) (isa.Reg, error) { return p.reg(s.line, s.args[i]) }
	im := func(i int) (int64, error) { return p.imm(s.line, s.args[i]) }
	mref := func(i int) (isa.Reg, int64, error) { return p.memRef(s.line, s.args[i]) }

	// Three-register ALU ops share a shape.
	alu3 := map[string]func(rd, rs1, rs2 isa.Reg){
		"add": b.Add, "sub": b.Sub, "mul": b.Mul, "div": b.Div, "rem": b.Rem,
		"and": b.And, "or": b.Or, "xor": b.Xor, "shl": b.Shl, "shr": b.Shr,
		"slt": b.Slt, "sltu": b.Sltu,
	}
	aluImm := map[string]func(rd, rs1 isa.Reg, imm int64){
		"addi": b.Addi, "muli": b.Muli, "andi": b.Andi, "ori": b.Ori,
		"xori": b.Xori, "shli": b.Shli, "shri": b.Shri,
	}
	branch := map[string]func(rs1, rs2 isa.Reg, label string){
		"beq": b.Beq, "bne": b.Bne, "blt": b.Blt, "bge": b.Bge,
		"bltu": b.Bltu, "bgeu": b.Bgeu,
	}

	switch {
	case s.mnem == "nop":
		b.Nop()
	case s.mnem == "halt":
		b.Halt()
	case s.mnem == "syscall":
		b.Syscall()
	case s.mnem == "fence":
		b.Fence()

	case s.mnem == "li":
		if err := p.want(s, 2); err != nil {
			return err
		}
		rd, err := r(0)
		if err != nil {
			return err
		}
		v, err := im(1)
		if err != nil {
			return err
		}
		b.Li(rd, v)
	case s.mnem == "mov":
		if err := p.want(s, 2); err != nil {
			return err
		}
		rd, err := r(0)
		if err != nil {
			return err
		}
		rs, err := r(1)
		if err != nil {
			return err
		}
		b.Mov(rd, rs)

	case alu3[s.mnem] != nil:
		if err := p.want(s, 3); err != nil {
			return err
		}
		rd, err := r(0)
		if err != nil {
			return err
		}
		rs1, err := r(1)
		if err != nil {
			return err
		}
		rs2, err := r(2)
		if err != nil {
			return err
		}
		alu3[s.mnem](rd, rs1, rs2)

	case aluImm[s.mnem] != nil:
		if err := p.want(s, 3); err != nil {
			return err
		}
		rd, err := r(0)
		if err != nil {
			return err
		}
		rs1, err := r(1)
		if err != nil {
			return err
		}
		v, err := im(2)
		if err != nil {
			return err
		}
		aluImm[s.mnem](rd, rs1, v)

	case s.mnem == "lb" || s.mnem == "lbu":
		if err := p.want(s, 2); err != nil {
			return err
		}
		rd, err := r(0)
		if err != nil {
			return err
		}
		base, off, err := mref(1)
		if err != nil {
			return err
		}
		if s.mnem == "lb" {
			b.Lb(rd, base, off)
		} else {
			b.Lbu(rd, base, off)
		}
	case s.mnem == "sb":
		if err := p.want(s, 2); err != nil {
			return err
		}
		base, off, err := mref(0)
		if err != nil {
			return err
		}
		rs, err := r(1)
		if err != nil {
			return err
		}
		b.Sb(base, off, rs)
	case s.mnem == "ld":
		if err := p.want(s, 2); err != nil {
			return err
		}
		rd, err := r(0)
		if err != nil {
			return err
		}
		base, off, err := mref(1)
		if err != nil {
			return err
		}
		b.Ld(rd, base, off)
	case s.mnem == "st":
		if err := p.want(s, 2); err != nil {
			return err
		}
		base, off, err := mref(0)
		if err != nil {
			return err
		}
		rs, err := r(1)
		if err != nil {
			return err
		}
		b.St(base, off, rs)

	case branch[s.mnem] != nil:
		if err := p.want(s, 3); err != nil {
			return err
		}
		rs1, err := r(0)
		if err != nil {
			return err
		}
		rs2, err := r(1)
		if err != nil {
			return err
		}
		branch[s.mnem](rs1, rs2, s.args[2])
	case s.mnem == "jmp":
		if err := p.want(s, 1); err != nil {
			return err
		}
		b.Jmp(s.args[0])
	case s.mnem == "jal":
		if err := p.want(s, 2); err != nil {
			return err
		}
		rd, err := r(0)
		if err != nil {
			return err
		}
		b.Jal(rd, s.args[1])
	case s.mnem == "jr":
		if err := p.want(s, 1); err != nil {
			return err
		}
		rs, err := r(0)
		if err != nil {
			return err
		}
		b.Jr(rs)
	case s.mnem == "lilabel":
		if err := p.want(s, 2); err != nil {
			return err
		}
		rd, err := r(0)
		if err != nil {
			return err
		}
		b.LiLabel(rd, s.args[1])

	case s.mnem == "xchg":
		if err := p.want(s, 3); err != nil {
			return err
		}
		rd, err := r(0)
		if err != nil {
			return err
		}
		base, off, err := mref(1)
		if err != nil {
			return err
		}
		rs2, err := r(2)
		if err != nil {
			return err
		}
		b.Xchg(rd, base, off, rs2)
	case s.mnem == "cas":
		if err := p.want(s, 4); err != nil {
			return err
		}
		rd, err := r(0)
		if err != nil {
			return err
		}
		base, off, err := mref(1)
		if err != nil {
			return err
		}
		expect, err := r(2)
		if err != nil {
			return err
		}
		repl, err := r(3)
		if err != nil {
			return err
		}
		b.Cas(rd, base, off, expect, repl)
	case s.mnem == "fadd":
		if err := p.want(s, 3); err != nil {
			return err
		}
		rd, err := r(0)
		if err != nil {
			return err
		}
		base, off, err := mref(1)
		if err != nil {
			return err
		}
		rs2, err := r(2)
		if err != nil {
			return err
		}
		b.Fadd(rd, base, off, rs2)

	case s.mnem == "repmovs":
		if err := p.want(s, 3); err != nil {
			return err
		}
		dst, err := r(0)
		if err != nil {
			return err
		}
		src, err := r(1)
		if err != nil {
			return err
		}
		cnt, err := r(2)
		if err != nil {
			return err
		}
		b.RepMovs(dst, src, cnt)
	case s.mnem == "repstos":
		if err := p.want(s, 3); err != nil {
			return err
		}
		dst, err := r(0)
		if err != nil {
			return err
		}
		val, err := r(1)
		if err != nil {
			return err
		}
		cnt, err := r(2)
		if err != nil {
			return err
		}
		b.RepStos(dst, val, cnt)

	// Synchronization pseudo-instructions, expanding to the same idioms
	// the built-in workloads use.
	case s.mnem == "pbarrier":
		if err := p.want(s, 1); err != nil {
			return err
		}
		base, err := r(0)
		if err != nil {
			return err
		}
		p.pseudoSeq++
		workload.EmitBarrier(b, fmt.Sprintf("qb%d", p.pseudoSeq), base)
	case s.mnem == "plock":
		if err := p.want(s, 1); err != nil {
			return err
		}
		base, err := r(0)
		if err != nil {
			return err
		}
		p.pseudoSeq++
		workload.EmitFutexLock(b, fmt.Sprintf("ql%d", p.pseudoSeq), base)
	case s.mnem == "punlock":
		if err := p.want(s, 1); err != nil {
			return err
		}
		base, err := r(0)
		if err != nil {
			return err
		}
		p.pseudoSeq++
		workload.EmitFutexUnlock(b, fmt.Sprintf("qu%d", p.pseudoSeq), base)

	default:
		return p.errf(s.line, "unknown mnemonic %q", s.mnem)
	}
	return nil
}
