// Package qasm parses the textual assembly format for simulated-machine
// programs, so workloads can be written, recorded and replayed without
// writing Go. The format maps 1:1 onto the isa.Builder API plus a few
// synchronization pseudo-instructions.
//
// Example:
//
//	.name mycounter
//	.threads 4
//	.alloc counter 1        ; one shared word, symbol "counter"
//	.alloc bar 2            ; barrier block
//
//	        li   r3, @counter
//	        li   r4, 0
//	        li   r5, 1000
//	        li   r6, 1
//	loop:   fadd r7, [r3+0], r6
//	        addi r4, r4, 1
//	        bne  r4, r5, loop
//	        li   r9, @bar
//	        pbarrier r9
//	        halt
//
// Grammar notes:
//
//   - one statement per line; ';' starts a comment; labels end with ':'
//     and may share a line with an instruction;
//   - directives: .name NAME, .threads N, .alloc SYMBOL WORDS,
//     .init SYMBOL WORDOFF VALUE (repeatable);
//   - operands: registers r0..r31, integer immediates (decimal or 0x...),
//     @SYMBOL (the symbol's address), memory refs [rN+OFF] / [rN-OFF];
//     byte-granular accesses via lb/lbu/sb take unaligned addresses;
//   - pseudo-instructions: pbarrier rN (sense-reversing futex barrier at
//     [rN]), plock rN / punlock rN (three-state futex mutex at [rN]) —
//     these expand to the same idioms the built-in workloads use and
//     clobber r10..r14 and r20..r27.
package qasm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Parse assembles source text into a runnable program.
func Parse(src string) (*isa.Program, error) {
	p := &parser{
		name:    "qasm",
		threads: 4,
		symbols: map[string]uint64{},
	}
	if err := p.scan(src); err != nil {
		return nil, err
	}
	return p.build()
}

type allocDirective struct {
	symbol string
	words  uint64
}

type initDirective struct {
	symbol  string
	wordOff uint64
	value   uint64
}

type stmt struct {
	line   int
	label  string
	mnem   string
	args   []string
	rawtxt string
}

type parser struct {
	name    string
	threads int
	allocs  []allocDirective
	inits   []initDirective
	stmts   []stmt
	symbols map[string]uint64

	pseudoSeq int
}

func (p *parser) errf(line int, format string, args ...any) error {
	return fmt.Errorf("qasm:%d: %s", line, fmt.Sprintf(format, args...))
}

// scan splits the source into directives and instruction statements.
func (p *parser) scan(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := raw
		if idx := strings.IndexByte(text, ';'); idx >= 0 {
			text = text[:idx]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ".") {
			if err := p.directive(line, text); err != nil {
				return err
			}
			continue
		}
		label := ""
		if idx := strings.IndexByte(text, ':'); idx >= 0 {
			label = strings.TrimSpace(text[:idx])
			text = strings.TrimSpace(text[idx+1:])
			if label == "" {
				return p.errf(line, "empty label")
			}
		}
		if text == "" {
			if label != "" {
				p.stmts = append(p.stmts, stmt{line: line, label: label})
			}
			continue
		}
		fields := strings.Fields(text)
		mnem := strings.ToLower(fields[0])
		argText := strings.TrimSpace(text[len(fields[0]):])
		var args []string
		if argText != "" {
			for _, a := range strings.Split(argText, ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}
		p.stmts = append(p.stmts, stmt{line: line, label: label, mnem: mnem, args: args, rawtxt: text})
	}
	return nil
}

func (p *parser) directive(line int, text string) error {
	fields := strings.Fields(text)
	switch fields[0] {
	case ".name":
		if len(fields) != 2 {
			return p.errf(line, ".name needs exactly one argument")
		}
		p.name = fields[1]
	case ".threads":
		if len(fields) != 2 {
			return p.errf(line, ".threads needs exactly one argument")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n <= 0 || n > 64 {
			return p.errf(line, "bad thread count %q", fields[1])
		}
		p.threads = n
	case ".alloc":
		if len(fields) != 3 {
			return p.errf(line, ".alloc needs SYMBOL WORDS")
		}
		words, err := strconv.ParseUint(fields[2], 0, 32)
		if err != nil || words == 0 {
			return p.errf(line, "bad word count %q", fields[2])
		}
		if _, dup := p.symbols[fields[1]]; dup {
			return p.errf(line, "duplicate symbol %q", fields[1])
		}
		p.symbols[fields[1]] = 0 // address assigned at build
		p.allocs = append(p.allocs, allocDirective{symbol: fields[1], words: words})
	case ".init":
		if len(fields) != 4 {
			return p.errf(line, ".init needs SYMBOL WORDOFF VALUE")
		}
		off, err := strconv.ParseUint(fields[2], 0, 32)
		if err != nil {
			return p.errf(line, "bad word offset %q", fields[2])
		}
		val, err := strconv.ParseUint(fields[3], 0, 64)
		if err != nil {
			return p.errf(line, "bad value %q", fields[3])
		}
		p.inits = append(p.inits, initDirective{symbol: fields[1], wordOff: off, value: val})
	default:
		return p.errf(line, "unknown directive %s", fields[0])
	}
	return nil
}

// build lays out data, then assembles every statement. Builder panics
// (duplicate or undefined labels) are converted to errors: in this
// package the program text is user input, not a static artifact.
func (p *parser) build() (prog *isa.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			prog, err = nil, fmt.Errorf("qasm: %v", r)
		}
	}()
	return p.buildChecked()
}

func (p *parser) buildChecked() (*isa.Program, error) {
	var lay mem.Layout
	for _, a := range p.allocs {
		p.symbols[a.symbol] = lay.AllocWords(a.words)
	}
	for _, in := range p.inits {
		if _, ok := p.symbols[in.symbol]; !ok {
			return nil, fmt.Errorf("qasm: .init of unknown symbol %q", in.symbol)
		}
	}

	b := isa.NewBuilder(p.name)
	for _, s := range p.stmts {
		if s.label != "" {
			b.Label(s.label)
		}
		if s.mnem == "" {
			continue
		}
		if err := p.emit(b, s); err != nil {
			return nil, err
		}
	}

	inits := p.inits
	symbols := p.symbols
	init := func(m *mem.Memory) {
		for _, in := range inits {
			m.Store(symbols[in.symbol]+in.wordOff*8, in.value)
		}
	}
	prog := b.Build(lay.Size(), p.threads, init)
	for k, v := range p.symbols {
		prog.Symbols[k] = v
	}
	return prog, nil
}

func (p *parser) reg(line int, tok string) (isa.Reg, error) {
	t := strings.ToLower(tok)
	if !strings.HasPrefix(t, "r") {
		return 0, p.errf(line, "expected register, got %q", tok)
	}
	n, err := strconv.Atoi(t[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, p.errf(line, "bad register %q", tok)
	}
	return isa.Reg(n), nil
}

func (p *parser) imm(line int, tok string) (int64, error) {
	if strings.HasPrefix(tok, "@") {
		sym := tok[1:]
		addr, ok := p.symbols[sym]
		if !ok {
			return 0, p.errf(line, "unknown symbol %q", sym)
		}
		return int64(addr), nil
	}
	v, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		// Allow full-range unsigned constants too.
		u, uerr := strconv.ParseUint(tok, 0, 64)
		if uerr != nil {
			return 0, p.errf(line, "bad immediate %q", tok)
		}
		return int64(u), nil
	}
	return v, nil
}

// memRef parses "[rN+OFF]" / "[rN-OFF]" / "[rN]".
func (p *parser) memRef(line int, tok string) (isa.Reg, int64, error) {
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return 0, 0, p.errf(line, "expected memory reference, got %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := p.reg(line, strings.TrimSpace(inner))
		return r, 0, err
	}
	r, err := p.reg(line, strings.TrimSpace(inner[:sep]))
	if err != nil {
		return 0, 0, err
	}
	off, err := p.imm(line, strings.TrimSpace(inner[sep:]))
	if err != nil {
		return 0, 0, err
	}
	return r, off, nil
}

func (p *parser) want(s stmt, n int) error {
	if len(s.args) != n {
		return p.errf(s.line, "%s needs %d operands, got %d (%q)", s.mnem, n, len(s.args), s.rawtxt)
	}
	return nil
}
