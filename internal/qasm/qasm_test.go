package qasm_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/qasm"
)

const counterSrc = `
; atomic counter in qasm
.name qcounter
.threads 4
.alloc counter 1
.alloc bar 2

        li   r3, @counter
        li   r4, 0
        li   r5, 500
        li   r6, 1
loop:   fadd r7, [r3+0], r6
        addi r4, r4, 1
        bne  r4, r5, loop
        li   r9, @bar
        pbarrier r9
        halt
`

func TestParseAndRunCounter(t *testing.T) {
	prog, err := qasm.Parse(counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "qcounter" || prog.DefaultThreads != 4 {
		t.Fatalf("header: name=%q threads=%d", prog.Name, prog.DefaultThreads)
	}
	cfg := machine.DefaultConfig()
	cfg.Threads = 4
	m := machine.New(prog, cfg)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Memory().Load(prog.Symbol("counter")); got != 2000 {
		t.Errorf("counter = %d, want 2000", got)
	}
}

func TestParsedProgramRecordsAndReplays(t *testing.T) {
	prog, err := qasm.Parse(counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Threads = 4
	cfg.Seed = 9
	if _, _, err := core.RecordAndVerify(prog, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLockPseudoInstructions(t *testing.T) {
	src := `
.threads 4
.alloc lock 1
.alloc shared 1
        li   r3, @lock
        li   r4, @shared
        li   r5, 0
loop:   plock r3
        ld   r6, [r4+0]
        addi r6, r6, 1
        st   [r4+0], r6
        punlock r3
        addi r5, r5, 1
        li   r7, 200
        bne  r5, r7, loop
        halt
`
	prog, err := qasm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Threads = 4
	m := machine.New(prog, cfg)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Memory().Load(prog.Symbol("shared")); got != 800 {
		t.Errorf("shared = %d, want 800 (mutex broken)", got)
	}
}

func TestInitDirectiveAndSyscalls(t *testing.T) {
	src := `
.threads 1
.alloc data 2
.init data 0 41
        li  r3, @data
        ld  r4, [r3+0]
        addi r4, r4, 1
        st  [r3+8], r4
        li  r10, 2        ; SysWrite
        li  r11, 1
        mov r12, r3
        li  r13, 16
        syscall
        halt
`
	prog, err := qasm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Threads = 1
	m := machine.New(prog, cfg)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Memory().Load(prog.Symbol("data")+8) != 42 {
		t.Error("init value not incremented")
	}
	if len(res.Output) != 16 || res.Output[0] != 41 || res.Output[8] != 42 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestNegativeOffsetsAndHex(t *testing.T) {
	src := `
.threads 1
.alloc arr 4
        li r3, @arr
        addi r3, r3, 16
        li r4, 0xff
        st [r3-8], r4
        ld r5, [r3-8]
        halt
`
	prog, err := qasm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Threads = 1
	m := machine.New(prog, cfg)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Memory().Load(prog.Symbol("arr") + 8); got != 0xff {
		t.Errorf("arr[1] = %#x, want 0xff", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{".name", ".name needs"},
		{".threads zero", "bad thread count"},
		{".alloc x", ".alloc needs"},
		{".alloc x 0", "bad word count"},
		{".alloc x 1\n.alloc x 1", "duplicate symbol"},
		{".init y 0 1\nhalt", "unknown symbol"},
		{".bogus", "unknown directive"},
		{"frobnicate r1", "unknown mnemonic"},
		{"li r99, 1", "bad register"},
		{"li r1", "needs 2 operands"},
		{"li r1, @ghost", "unknown symbol"},
		{"ld r1, r2", "expected memory reference"},
		{"li r1, zzz", "bad immediate"},
		{"jmp nowhere", "undefined label"},
		{"x: halt\nx: halt", "duplicate label"},
		{": halt", "empty label"},
	}
	for _, c := range cases {
		_, err := qasm.Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestLineNumbersInErrors(t *testing.T) {
	_, err := qasm.Parse("nop\nnop\nbadop r1\n")
	if err == nil || !strings.Contains(err.Error(), "qasm:3:") {
		t.Errorf("error = %v, want line 3", err)
	}
}

func TestAllMnemonicsParse(t *testing.T) {
	src := `
.threads 1
.alloc d 8
  li r3, @d
  nop
  fence
  mov r4, r3
  add r5, r4, r3
  sub r5, r4, r3
  mul r5, r4, r3
  div r5, r4, r3
  rem r5, r4, r3
  and r5, r4, r3
  or  r5, r4, r3
  xor r5, r4, r3
  shl r5, r4, r0
  shr r5, r4, r0
  slt r5, r4, r3
  sltu r5, r4, r3
  addi r5, r4, 1
  muli r5, r4, 2
  andi r5, r4, 3
  ori  r5, r4, 4
  xori r5, r4, 5
  shli r5, r4, 1
  shri r5, r4, 1
  ld r6, [r3+0]
  st [r3+8], r6
  lb  r6, [r3+1]
  lbu r6, [r3+2]
  sb  [r3+3], r6
  xchg r6, [r3+0], r5
  cas r6, [r3+0], r5, r4
  fadd r6, [r3+0], r5
  li r7, 2
  mov r8, r3
  repstos r8, r5, r7
  li r7, 2
  mov r8, r3
  addi r9, r3, 32
  repmovs r9, r8, r7
  jal r31, fn
  jmp end
fn: jr r31
end:
  lilabel r15, end
  beq r0, r0, end2
end2:
  bne r0, r3, e3
e3:
  blt r0, r3, e4
e4:
  bge r3, r0, e5
e5:
  bltu r0, r3, e6
e6:
  bgeu r3, r0, e7
e7:
  halt
`
	prog, err := qasm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Threads = 1
	if _, err := machine.New(prog, cfg).Run(); err != nil {
		t.Fatal(err)
	}
}
