package analysis

import "repro/internal/chunk"

// ChunkPair names two chunks on different threads whose timestamp
// intervals overlap, i.e. chunks the recorded Lamport order does not
// serialize. ThreadA < ThreadB always holds; ChunkA and ChunkB are
// indices into the respective thread's chunk log.
type ChunkPair struct {
	ThreadA int
	ChunkA  int
	ThreadB int
	ChunkB  int
}

// ConcurrentPairs enumerates every cross-thread pair of
// Lamport-concurrent chunks. A chunk occupies the interval
// (previous same-thread ts, own ts], matching the replay scheduler's
// view, and two chunks are concurrent when those intervals overlap.
// Per-thread intervals are ascending, so each thread pair is a linear
// merge rather than a quadratic scan.
func ConcurrentPairs(logs []*chunk.Log) []ChunkPair {
	type span struct {
		lo, hi uint64 // (lo, hi]
		idx    int
	}
	spans := make([][]span, len(logs))
	for tid, l := range logs {
		var prevTS uint64
		for i, e := range l.Entries {
			lo := prevTS
			if i == 0 {
				lo = 0
			}
			spans[tid] = append(spans[tid], span{lo: lo, hi: e.TS + 1, idx: i})
			prevTS = e.TS
		}
	}

	var pairs []ChunkPair
	for a := 0; a < len(spans); a++ {
		for b := a + 1; b < len(spans); b++ {
			// Both lists ascend in lo and hi, so for each interval of
			// thread a the matching run of thread b intervals starts no
			// earlier than it did for the previous interval: slide a
			// start pointer past intervals that end at or before sa.lo,
			// then take every interval opening before sa.hi.
			start := 0
			for _, sa := range spans[a] {
				for start < len(spans[b]) && spans[b][start].hi <= sa.lo {
					start++
				}
				for j := start; j < len(spans[b]) && spans[b][j].lo < sa.hi; j++ {
					pairs = append(pairs, ChunkPair{
						ThreadA: a, ChunkA: sa.idx,
						ThreadB: b, ChunkB: spans[b][j].idx,
					})
				}
			}
		}
	}
	return pairs
}
