package analysis

import (
	"repro/internal/chunk"
	"repro/internal/dispatch"
)

// ChunkPair names two chunks on different threads whose timestamp
// intervals overlap, i.e. chunks the recorded Lamport order does not
// serialize. ThreadA < ThreadB always holds; ChunkA and ChunkB are
// indices into the respective thread's chunk log.
type ChunkPair struct {
	ThreadA int
	ChunkA  int
	ThreadB int
	ChunkB  int
}

// ConcurrentPairs enumerates every cross-thread pair of
// Lamport-concurrent chunks. A chunk occupies the interval
// (previous same-thread ts, own ts] — unbounded below for a thread's
// first chunk — matching the replay scheduler's view, and two chunks are
// concurrent when those intervals overlap: each must end strictly after
// the other begins. A chunk that ends exactly where another begins is
// ordered before it, not concurrent with it.
// Per-thread intervals are ascending, so each thread pair is a linear
// merge rather than a quadratic scan.
func ConcurrentPairs(logs []*chunk.Log) []ChunkPair {
	return ConcurrentPairsWorkers(logs, 0)
}

// ConcurrentPairsWorkers is ConcurrentPairs with the thread-pair merges
// fanned out over a bounded worker pool (0 or 1 workers: serial,
// negative: runtime.GOMAXPROCS(0)). Each thread pair's merge is
// independent, and the per-pair results are concatenated in the same
// (a, b)-lexicographic order the serial scan produces, so the output is
// identical for every worker count.
func ConcurrentPairsWorkers(logs []*chunk.Log, workers int) []ChunkPair {
	spans := spansOf(logs)
	type job struct{ a, b int }
	var jobs []job
	for a := 0; a < len(spans); a++ {
		for b := a + 1; b < len(spans); b++ {
			jobs = append(jobs, job{a, b})
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	perJob := make([][]ChunkPair, len(jobs))
	dispatch.Local{Workers: workers}.Execute(dispatch.Spec{
		Tasks: len(jobs),
		Run: func(i int) error {
			j := jobs[i]
			perJob[i] = appendPairs(nil, j.a, spans[j.a], j.b, spans[j.b])
			return nil
		},
	})
	var pairs []ChunkPair
	for _, p := range perJob {
		pairs = append(pairs, p...)
	}
	return pairs
}

// span is one chunk's timestamp interval (lo, hi]. open marks a thread's
// first chunk, whose lower bound is -infinity: lo would otherwise be the
// zero value and collide with a genuine predecessor timestamp of 0.
// Timestamps are used as-is (hi == own ts), so ts == MaxUint64 needs no
// +1 and cannot overflow.
type span struct {
	lo, hi uint64
	open   bool
	idx    int
}

func spansOf(logs []*chunk.Log) [][]span {
	spans := make([][]span, len(logs))
	for tid, l := range logs {
		var prevTS uint64
		for i, e := range l.Entries {
			spans[tid] = append(spans[tid], span{lo: prevTS, hi: e.TS, open: i == 0, idx: i})
			prevTS = e.TS
		}
	}
	return spans
}

// appendPairs merges one thread pair's span lists. Spans (pa, ta] and
// (pb, tb] overlap iff tb > pa and ta > pb, an open bound standing for
// -infinity. Both lists ascend in lo and hi, so for each span of thread
// a the matching run of thread b spans starts no earlier than it did for
// the previous span: slide a start pointer past spans that end at or
// before sa.lo (only once sa has a real lower bound — the first span's
// is -infinity and excludes nothing), then take every span opening
// strictly before sa.hi.
func appendPairs(pairs []ChunkPair, a int, sa []span, b int, sb []span) []ChunkPair {
	start := 0
	for _, s := range sa {
		if !s.open {
			for start < len(sb) && sb[start].hi <= s.lo {
				start++
			}
		}
		for j := start; j < len(sb) && (sb[j].open || sb[j].lo < s.hi); j++ {
			pairs = append(pairs, ChunkPair{
				ThreadA: a, ChunkA: s.idx,
				ThreadB: b, ChunkB: sb[j].idx,
			})
		}
	}
	return pairs
}
