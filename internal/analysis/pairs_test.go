package analysis

import (
	"math"
	"testing"

	"repro/internal/chunk"
)

func mkLog(tid int, tss ...uint64) *chunk.Log {
	l := &chunk.Log{Thread: tid}
	for _, ts := range tss {
		l.Append(chunk.Entry{Size: 1, TS: ts, Reason: chunk.ReasonFlush})
	}
	return l
}

func pairSet(logs ...*chunk.Log) map[ChunkPair]bool {
	out := map[ChunkPair]bool{}
	for _, p := range ConcurrentPairs(logs) {
		out[p] = true
	}
	return out
}

// bruteForcePairs recomputes the pair set quadratically with the
// documented (prev, ts] interval convention (open lower bound on first
// chunks), as an oracle for the linear merge.
func bruteForcePairs(logs []*chunk.Log) map[ChunkPair]bool {
	type span struct {
		lo, hi uint64
		open   bool
	}
	spans := make([][]span, len(logs))
	for tid, l := range logs {
		var prev uint64
		for i, e := range l.Entries {
			spans[tid] = append(spans[tid], span{lo: prev, hi: e.TS, open: i == 0})
			prev = e.TS
		}
	}
	out := map[ChunkPair]bool{}
	for a := range spans {
		for b := a + 1; b < len(spans); b++ {
			for i, sa := range spans[a] {
				for j, sb := range spans[b] {
					if (sa.open || sb.hi > sa.lo) && (sb.open || sa.hi > sb.lo) {
						out[ChunkPair{ThreadA: a, ChunkA: i, ThreadB: b, ChunkB: j}] = true
					}
				}
			}
		}
	}
	return out
}

func assertSameAsBruteForce(t *testing.T, logs ...*chunk.Log) map[ChunkPair]bool {
	t.Helper()
	got := pairSet(logs...)
	want := bruteForcePairs(logs)
	if len(got) != len(want) {
		t.Errorf("got %d pairs, brute force %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Errorf("missing pair %+v", p)
		}
	}
	for p := range got {
		if !want[p] {
			t.Errorf("spurious pair %+v", p)
		}
	}
	return got
}

func TestConcurrentPairsMaxTimestamp(t *testing.T) {
	// ts == MaxUint64 must not overflow: the old hi = ts+1 encoding
	// wrapped to 0 and silently dropped every pair touching the chunk.
	max := uint64(math.MaxUint64)
	got := assertSameAsBruteForce(t,
		mkLog(0, 10, max),
		mkLog(1, max-1, max),
	)
	// Thread 0's max-ts chunk (10, max] overlaps both of thread 1's.
	for _, p := range []ChunkPair{
		{ThreadA: 0, ChunkA: 1, ThreadB: 1, ChunkB: 0},
		{ThreadA: 0, ChunkA: 1, ThreadB: 1, ChunkB: 1},
	} {
		if !got[p] {
			t.Errorf("max-ts pair %+v lost", p)
		}
	}
}

func TestConcurrentPairsEqualTimestampAdjacent(t *testing.T) {
	// Equal timestamps across threads are concurrent (neither ordered
	// first); a chunk ending exactly where the other thread's next chunk
	// begins is ordered.
	got := assertSameAsBruteForce(t,
		mkLog(0, 5, 9),
		mkLog(1, 5, 9),
	)
	for _, p := range []ChunkPair{
		{ThreadA: 0, ChunkA: 0, ThreadB: 1, ChunkB: 0},
		{ThreadA: 0, ChunkA: 1, ThreadB: 1, ChunkB: 1},
	} {
		if !got[p] {
			t.Errorf("equal-ts pair %+v missing", p)
		}
	}
	for _, p := range []ChunkPair{
		{ThreadA: 0, ChunkA: 0, ThreadB: 1, ChunkB: 1},
		{ThreadA: 0, ChunkA: 1, ThreadB: 1, ChunkB: 0},
	} {
		if got[p] {
			t.Errorf("boundary-ordered pair %+v reported concurrent", p)
		}
	}
}

func TestConcurrentPairsSingleChunkThreads(t *testing.T) {
	// Single-chunk threads have open lower bounds, so they are
	// concurrent with everything that starts before their timestamp —
	// including each other at identical (and zero) timestamps.
	got := assertSameAsBruteForce(t, mkLog(0, 0), mkLog(1, 0))
	if !got[ChunkPair{ThreadA: 0, ChunkA: 0, ThreadB: 1, ChunkB: 0}] {
		t.Error("two ts-0 opening chunks must be concurrent (both unbounded below)")
	}

	// A first chunk whose predecessor-free bound would collide with a
	// real predecessor timestamp of 0: thread 1's second chunk has
	// lo == 0, thread 0's only chunk ends at 0. They must be ordered,
	// while the two opening chunks stay concurrent.
	got = assertSameAsBruteForce(t, mkLog(0, 0), mkLog(1, 0, 7))
	if got[ChunkPair{ThreadA: 0, ChunkA: 0, ThreadB: 1, ChunkB: 1}] {
		t.Error("chunk ending at ts 0 reported concurrent with successor starting at ts 0")
	}
	if !got[ChunkPair{ThreadA: 0, ChunkA: 0, ThreadB: 1, ChunkB: 0}] {
		t.Error("opening chunks at ts 0 must be concurrent")
	}
}

func TestConcurrentPairsMixedShapes(t *testing.T) {
	// Three threads with assorted shapes — empty log, single chunk,
	// longer run — exercise the slide/take pointer arithmetic against
	// the oracle.
	assertSameAsBruteForce(t,
		mkLog(0, 3, 6, 9, 12),
		mkLog(1),
		mkLog(2, 7),
	)
	assertSameAsBruteForce(t,
		mkLog(0, 1, 2, 3),
		mkLog(1, 2, 4, 8),
		mkLog(2, 3, 3, 5), // malformed equal adjacent ts stays in bounds
	)
}
