package analysis

import (
	"encoding/json"
	"testing"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

func TestAnalyzeHandConstructed(t *testing.T) {
	// Two threads, fully serialized: thread 0's chunks at ts 0,2 and
	// thread 1's at ts 1,3, each dependent on the previous.
	l0 := &chunk.Log{Thread: 0}
	l0.Append(chunk.Entry{Size: 100, TS: 0, Reason: chunk.ReasonConflictRAW})
	l0.Append(chunk.Entry{Size: 100, TS: 2, Reason: chunk.ReasonFlush})
	l1 := &chunk.Log{Thread: 1}
	l1.Append(chunk.Entry{Size: 50, TS: 1, Reason: chunk.ReasonSyscall})
	l1.Append(chunk.Entry{Size: 50, TS: 3, Reason: chunk.ReasonFlush})
	in := &capo.InputLog{}
	in.Append(capo.Record{Kind: capo.KindSyscall, Thread: 1, TS: 2})

	r := Analyze([]*chunk.Log{l0, l1}, in)
	if r.TotalInstructions != 300 || r.TotalChunks != 4 || r.TotalInputs != 1 {
		t.Errorf("totals: %d instrs, %d chunks, %d inputs", r.TotalInstructions, r.TotalChunks, r.TotalInputs)
	}
	if r.Threads[0].Conflicts != 1 || r.Threads[1].Syscalls != 1 || r.Threads[1].InputRecords != 1 {
		t.Errorf("per-thread stats: %+v", r.Threads)
	}
	if r.Threads[0].MeanChunk != 100 || r.Threads[1].MeanChunk != 50 {
		t.Errorf("mean chunks: %v %v", r.Threads[0].MeanChunk, r.Threads[1].MeanChunk)
	}
	if r.Reasons.Get(int(chunk.ReasonFlush)) != 2 {
		t.Error("reason counting wrong")
	}
	// Interleaved intervals overlap: concurrency above 1.
	if r.Concurrency <= 1 {
		t.Errorf("concurrency = %v, want > 1 for interleaved chunks", r.Concurrency)
	}
	// 5 items, 4 distinct timestamps (input shares ts=2 with a chunk).
	if got := r.ReplaySerialization; got != 4.0/5.0 {
		t.Errorf("serialization = %v, want 0.8", got)
	}
}

func TestAnalyzeSerialThread(t *testing.T) {
	l0 := &chunk.Log{Thread: 0}
	l0.Append(chunk.Entry{Size: 10, TS: 0, Reason: chunk.ReasonFlush})
	r := Analyze([]*chunk.Log{l0}, nil)
	if r.Concurrency != 1 {
		t.Errorf("single thread concurrency = %v, want 1", r.Concurrency)
	}
	if r.ReplaySerialization != 1 {
		t.Errorf("serialization = %v, want 1", r.ReplaySerialization)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	r := Analyze(nil, nil)
	if r.TotalChunks != 0 || r.Concurrency != 0 {
		t.Errorf("empty report: %+v", r)
	}
}

func TestAnalyzeNegativeThreadRecord(t *testing.T) {
	// A corrupt input log carrying a negative thread id must not panic
	// and must not be attributed to any thread.
	l0 := &chunk.Log{Thread: 0}
	l0.Append(chunk.Entry{Size: 10, TS: 0, Reason: chunk.ReasonFlush})
	in := &capo.InputLog{}
	in.Append(capo.Record{Kind: capo.KindSyscall, Thread: -1, TS: 1})
	in.Append(capo.Record{Kind: capo.KindSyscall, Thread: 0, TS: 2})

	r := Analyze([]*chunk.Log{l0}, in)
	if r.TotalInputs != 2 {
		t.Errorf("TotalInputs = %d, want 2", r.TotalInputs)
	}
	if r.Threads[0].InputRecords != 1 {
		t.Errorf("thread 0 InputRecords = %d, want 1 (negative-id record dropped)", r.Threads[0].InputRecords)
	}
}

func TestReportMarshalsCleanly(t *testing.T) {
	// encoding/json rejects NaN and Inf, so every derived ratio must
	// stay finite even on degenerate recordings: empty logs, a log of
	// zero-size chunks, and a lone input record with no chunks at all.
	degenerate := []struct {
		name string
		logs []*chunk.Log
		in   *capo.InputLog
	}{
		{"empty", nil, nil},
		{"zero-size-chunks", func() []*chunk.Log {
			l := &chunk.Log{Thread: 0}
			l.Append(chunk.Entry{Size: 0, TS: 0, Reason: chunk.ReasonFlush})
			l.Append(chunk.Entry{Size: 0, TS: 1, Reason: chunk.ReasonFlush})
			return []*chunk.Log{l}
		}(), nil},
		{"input-only", nil, func() *capo.InputLog {
			in := &capo.InputLog{}
			in.Append(capo.Record{Kind: capo.KindSyscall, Thread: 0, TS: 0})
			return in
		}()},
	}
	for _, d := range degenerate {
		r := Analyze(d.logs, d.in)
		if _, err := json.Marshal(r); err != nil {
			t.Errorf("%s: report does not marshal: %v", d.name, err)
		}
	}
}

func TestConcurrentPairs(t *testing.T) {
	// Thread 0 chunks at ts 10, 20; thread 1 at ts 10, 30. Chunk
	// intervals are 0:(-inf,10],(10,20] and 1:(-inf,10],(10,30].
	// Pairs: (0,0)-(1,0) and (0,1)-(1,1) overlap outright. The
	// boundary-sharing pairs (0,0)-(1,1) and (0,1)-(1,0) are ordered —
	// one chunk ends exactly where the other begins — and must NOT be
	// reported.
	l0 := &chunk.Log{Thread: 0}
	l0.Append(chunk.Entry{Size: 10, TS: 10, Reason: chunk.ReasonFlush})
	l0.Append(chunk.Entry{Size: 10, TS: 20, Reason: chunk.ReasonFlush})
	l1 := &chunk.Log{Thread: 1}
	l1.Append(chunk.Entry{Size: 10, TS: 10, Reason: chunk.ReasonFlush})
	l1.Append(chunk.Entry{Size: 10, TS: 30, Reason: chunk.ReasonFlush})

	pairs := ConcurrentPairs([]*chunk.Log{l0, l1})
	want := map[ChunkPair]bool{
		{ThreadA: 0, ChunkA: 0, ThreadB: 1, ChunkB: 0}: true,
		{ThreadA: 0, ChunkA: 1, ThreadB: 1, ChunkB: 1}: true,
	}
	if len(pairs) != len(want) {
		t.Fatalf("got %d pairs %v, want %d", len(pairs), pairs, len(want))
	}
	for _, p := range pairs {
		if !want[p] {
			t.Errorf("unexpected pair %+v", p)
		}
	}
}

func TestConcurrentPairsSerialized(t *testing.T) {
	// Strictly alternating timestamps: thread 0 at ts 0 and 4, thread 1
	// at ts 2 and 6. Intervals 0:(-inf,0],(0,4] vs 1:(-inf,2],(2,6].
	// Both opening chunks are unbounded below, so they count as
	// concurrent with each other even at ts 0; the meat of the test is
	// that the linear merge agrees with a brute-force quadratic check.
	l0 := &chunk.Log{Thread: 0}
	l0.Append(chunk.Entry{Size: 5, TS: 0, Reason: chunk.ReasonFlush})
	l0.Append(chunk.Entry{Size: 5, TS: 4, Reason: chunk.ReasonFlush})
	l1 := &chunk.Log{Thread: 1}
	l1.Append(chunk.Entry{Size: 5, TS: 2, Reason: chunk.ReasonFlush})
	l1.Append(chunk.Entry{Size: 5, TS: 6, Reason: chunk.ReasonFlush})
	logs := []*chunk.Log{l0, l1}

	got := map[ChunkPair]bool{}
	for _, p := range ConcurrentPairs(logs) {
		if got[p] {
			t.Fatalf("duplicate pair %+v", p)
		}
		got[p] = true
	}

	// Brute force with the same (prev, ts] convention, an open lower
	// bound standing for -infinity on each thread's first chunk.
	type span struct {
		lo, hi uint64
		open   bool
	}
	mk := func(l *chunk.Log) []span {
		var out []span
		var prev uint64
		for i, e := range l.Entries {
			out = append(out, span{lo: prev, hi: e.TS, open: i == 0})
			prev = e.TS
		}
		return out
	}
	s0, s1 := mk(l0), mk(l1)
	for i, a := range s0 {
		for j, b := range s1 {
			p := ChunkPair{ThreadA: 0, ChunkA: i, ThreadB: 1, ChunkB: j}
			overlap := (a.open || b.hi > a.lo) && (b.open || a.hi > b.lo)
			if overlap != got[p] {
				t.Errorf("pair %+v: brute force %v, ConcurrentPairs %v", p, overlap, got[p])
			}
		}
	}
}

func TestAnalyzeRealRecordings(t *testing.T) {
	// Parallel kernels should analyze as more concurrent than the
	// serialized microbenchmark behaviour, and conflict-heavy kernels
	// should show higher conflict density than no-sharing ones.
	get := func(name string) *Report {
		spec, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		cfg := machine.DefaultConfig()
		cfg.Mode = machine.ModeFull
		cfg.Threads = 4
		cfg.Seed = 2
		b, err := core.Record(spec.Build(4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return Analyze(b.ChunkLogs, b.InputLog)
	}
	private := get("private")
	pingpong := get("pingpong")
	if private.Concurrency < 2 {
		t.Errorf("no-sharing kernel concurrency = %v, want >= 2 (threads run independently)", private.Concurrency)
	}
	var privDensity, pingDensity float64
	for _, th := range private.Threads {
		privDensity += th.ConflictsPerKinstr
	}
	for _, th := range pingpong.Threads {
		pingDensity += th.ConflictsPerKinstr
	}
	if pingDensity < 4*privDensity {
		t.Errorf("conflict density: pingpong %v should dwarf private %v", pingDensity, privDensity)
	}
}
