package analysis

import (
	"testing"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

func TestAnalyzeHandConstructed(t *testing.T) {
	// Two threads, fully serialized: thread 0's chunks at ts 0,2 and
	// thread 1's at ts 1,3, each dependent on the previous.
	l0 := &chunk.Log{Thread: 0}
	l0.Append(chunk.Entry{Size: 100, TS: 0, Reason: chunk.ReasonConflictRAW})
	l0.Append(chunk.Entry{Size: 100, TS: 2, Reason: chunk.ReasonFlush})
	l1 := &chunk.Log{Thread: 1}
	l1.Append(chunk.Entry{Size: 50, TS: 1, Reason: chunk.ReasonSyscall})
	l1.Append(chunk.Entry{Size: 50, TS: 3, Reason: chunk.ReasonFlush})
	in := &capo.InputLog{}
	in.Append(capo.Record{Kind: capo.KindSyscall, Thread: 1, TS: 2})

	r := Analyze([]*chunk.Log{l0, l1}, in)
	if r.TotalInstructions != 300 || r.TotalChunks != 4 || r.TotalInputs != 1 {
		t.Errorf("totals: %d instrs, %d chunks, %d inputs", r.TotalInstructions, r.TotalChunks, r.TotalInputs)
	}
	if r.Threads[0].Conflicts != 1 || r.Threads[1].Syscalls != 1 || r.Threads[1].InputRecords != 1 {
		t.Errorf("per-thread stats: %+v", r.Threads)
	}
	if r.Threads[0].MeanChunk != 100 || r.Threads[1].MeanChunk != 50 {
		t.Errorf("mean chunks: %v %v", r.Threads[0].MeanChunk, r.Threads[1].MeanChunk)
	}
	if r.Reasons.Get(int(chunk.ReasonFlush)) != 2 {
		t.Error("reason counting wrong")
	}
	// Interleaved intervals overlap: concurrency above 1.
	if r.Concurrency <= 1 {
		t.Errorf("concurrency = %v, want > 1 for interleaved chunks", r.Concurrency)
	}
	// 5 items, 4 distinct timestamps (input shares ts=2 with a chunk).
	if got := r.ReplaySerialization; got != 4.0/5.0 {
		t.Errorf("serialization = %v, want 0.8", got)
	}
}

func TestAnalyzeSerialThread(t *testing.T) {
	l0 := &chunk.Log{Thread: 0}
	l0.Append(chunk.Entry{Size: 10, TS: 0, Reason: chunk.ReasonFlush})
	r := Analyze([]*chunk.Log{l0}, nil)
	if r.Concurrency != 1 {
		t.Errorf("single thread concurrency = %v, want 1", r.Concurrency)
	}
	if r.ReplaySerialization != 1 {
		t.Errorf("serialization = %v, want 1", r.ReplaySerialization)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	r := Analyze(nil, nil)
	if r.TotalChunks != 0 || r.Concurrency != 0 {
		t.Errorf("empty report: %+v", r)
	}
}

func TestAnalyzeRealRecordings(t *testing.T) {
	// Parallel kernels should analyze as more concurrent than the
	// serialized microbenchmark behaviour, and conflict-heavy kernels
	// should show higher conflict density than no-sharing ones.
	get := func(name string) *Report {
		spec, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		cfg := machine.DefaultConfig()
		cfg.Mode = machine.ModeFull
		cfg.Threads = 4
		cfg.Seed = 2
		b, err := core.Record(spec.Build(4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return Analyze(b.ChunkLogs, b.InputLog)
	}
	private := get("private")
	pingpong := get("pingpong")
	if private.Concurrency < 2 {
		t.Errorf("no-sharing kernel concurrency = %v, want >= 2 (threads run independently)", private.Concurrency)
	}
	var privDensity, pingDensity float64
	for _, th := range private.Threads {
		privDensity += th.ConflictsPerKinstr
	}
	for _, th := range pingpong.Threads {
		pingDensity += th.ConflictsPerKinstr
	}
	if pingDensity < 4*privDensity {
		t.Errorf("conflict density: pingpong %v should dwarf private %v", pingDensity, privDensity)
	}
}
