// Package analysis derives post-mortem statistics from QuickRec
// recordings: per-thread chunking behaviour, conflict intensity, and an
// estimate of how concurrent the recorded execution actually was —
// the quantities a tuning or debugging workflow reads off the logs
// without re-executing anything.
package analysis

import (
	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/stats"
)

// ThreadStats summarises one thread's log.
type ThreadStats struct {
	Thread       int
	Chunks       int
	Instructions uint64
	// Conflicts counts chunks terminated by RAW/WAR/WAW snoops.
	Conflicts int
	// Syscalls counts syscall-terminated chunks; InputRecords counts the
	// thread's input-log entries.
	Syscalls     int
	InputRecords int
	// MeanChunk is the average chunk size in instructions.
	MeanChunk float64
	// ConflictsPerKinstr normalises conflict density.
	ConflictsPerKinstr float64
}

// Report is the full analysis of one recording.
type Report struct {
	Threads []ThreadStats
	// TotalInstructions across all threads.
	TotalInstructions uint64
	// TotalChunks and TotalInputs across all threads.
	TotalChunks int
	TotalInputs int
	// Reasons tallies chunk terminations by chunk.Reason.
	Reasons stats.Counter
	// Concurrency estimates how many threads were effectively executing
	// together in the recorded run: each chunk occupies the timestamp
	// interval (previous same-thread ts, own ts]; the estimate is the
	// instruction-weighted mean number of other-thread intervals each
	// chunk overlaps, plus one. 1.0 means serial; the thread count is
	// the ceiling.
	Concurrency float64
	// ReplaySerialization is distinct-timestamps/items: 1.0 means the
	// conservative replayer runs items strictly one at a time; lower
	// values mean ts-sharing items could replay concurrently.
	ReplaySerialization float64
}

// interval is a chunk's timestamp span.
type interval struct {
	lo, hi uint64 // (lo, hi]
	instrs uint64
	thread int
}

// Analyze computes the report from a recording's logs.
func Analyze(logs []*chunk.Log, input *capo.InputLog) *Report {
	r := &Report{}
	var intervals []interval
	distinctTS := map[uint64]struct{}{}
	items := 0

	for tid, l := range logs {
		ts := ThreadStats{Thread: tid, Chunks: l.Len()}
		var prevTS uint64
		first := true
		for _, e := range l.Entries {
			ts.Instructions += e.Size
			r.Reasons.Inc(int(e.Reason))
			if e.Reason.IsConflict() {
				ts.Conflicts++
			}
			if e.Reason == chunk.ReasonSyscall {
				ts.Syscalls++
			}
			lo := prevTS
			if first {
				lo = 0
				first = false
			}
			intervals = append(intervals, interval{lo: lo, hi: e.TS + 1, instrs: e.Size, thread: tid})
			prevTS = e.TS
			distinctTS[e.TS] = struct{}{}
			items++
		}
		if ts.Chunks > 0 {
			ts.MeanChunk = float64(ts.Instructions) / float64(ts.Chunks)
		}
		if ts.Instructions > 0 {
			ts.ConflictsPerKinstr = float64(ts.Conflicts) / (float64(ts.Instructions) / 1000)
		}
		r.Threads = append(r.Threads, ts)
		r.TotalInstructions += ts.Instructions
		r.TotalChunks += ts.Chunks
	}
	if input != nil {
		r.TotalInputs = input.Len()
		for _, rec := range input.Records {
			// A corrupt or hand-built log can carry a negative thread id;
			// guard both ends before indexing.
			if rec.Thread >= 0 && rec.Thread < len(r.Threads) {
				r.Threads[rec.Thread].InputRecords++
			}
			distinctTS[rec.TS] = struct{}{}
			items++
		}
	}
	if items > 0 {
		r.ReplaySerialization = float64(len(distinctTS)) / float64(items)
	}
	r.Concurrency = concurrency(intervals, r.TotalInstructions)
	return r
}

// concurrency computes the instruction-weighted mean overlap count.
// O(n^2) over chunks; recordings in this repository hold at most a few
// thousand chunks, so brute force is fine and obviously correct.
func concurrency(iv []interval, totalInstrs uint64) float64 {
	if totalInstrs == 0 {
		return 0
	}
	var weighted float64
	for i := range iv {
		overlapThreads := map[int]struct{}{}
		for j := range iv {
			if iv[j].thread == iv[i].thread {
				continue
			}
			// Overlap of (lo, hi] intervals.
			if iv[j].lo < iv[i].hi && iv[i].lo < iv[j].hi {
				overlapThreads[iv[j].thread] = struct{}{}
			}
		}
		weighted += float64(iv[i].instrs) * float64(1+len(overlapThreads))
	}
	return weighted / float64(totalInstrs)
}
