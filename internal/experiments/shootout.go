package experiments

import (
	"fmt"
	"io"

	"repro/internal/harness"
	"repro/internal/report"
)

// A10 is the serialization shootout (the arpc-style evaluation for the
// bundle wire format): the same recording pushed through every bundle
// codec — v1, v2 uncompressed, v2 block-compressed — and through gob
// and JSON strawmen, reporting encoded size, bytes per thousand
// recorded instructions (the paper's log-growth unit), encode/decode
// throughput and the compression ratio against v1. counter is the
// compact chunk-dominated recording; ioheavy carries the input-log
// payload bytes the v2 output-op encoding deduplicates.
func A10(cfg Config, w io.Writer) error {
	threads := cfg.maxThreads()
	for _, name := range []string{"counter", "ioheavy"} {
		rows, err := harness.MeasureShootout(name, threads, threads, 3)
		if err != nil {
			return err
		}
		t := report.Table{
			Title:   fmt.Sprintf("Serialization shootout (%s, %d threads)", name, threads),
			Columns: []string{"codec", "bytes", "B/kinstr", "enc MB/s", "dec MB/s", "vs v1"},
		}
		for _, r := range rows {
			t.AddRow(r.Codec, report.U(r.Bytes), report.F(r.BytesPerKinstr, 1),
				report.F(r.EncodeMBps, 1), report.F(r.DecodeMBps, 1),
				report.F(r.RatioVsV1, 2)+"x")
		}
		if _, err := fmt.Fprint(w, t.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "v2 decodes zero-copy out of a read-only mapping; the lz variant is the on-disk/ingest default")
	return err
}
