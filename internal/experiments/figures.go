package experiments

import (
	"fmt"
	"io"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/perf"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

// overheadOf returns (hardware-only, full-stack) overhead fractions for
// one workload/thread-count, all three modes run on the same seed and
// therefore the same interleaving.
func overheadOf(spec workload.Spec, threads int, seed uint64) (hw, full float64, err error) {
	native, err := run(spec, threads, seed, machine.ModeOff, nil)
	if err != nil {
		return 0, 0, err
	}
	hwRes, err := run(spec, threads, seed, machine.ModeHardwareOnly, nil)
	if err != nil {
		return 0, 0, err
	}
	fullRes, err := run(spec, threads, seed, machine.ModeFull, nil)
	if err != nil {
		return 0, 0, err
	}
	n := float64(native.Cycles)
	return (float64(hwRes.Cycles) - n) / n, (float64(fullRes.Cycles) - n) / n, nil
}

// F1 reproduces the paper's headline overhead figure: per benchmark and
// thread count, execution-time overhead of hardware-only recording
// versus the full Capo3 stack, relative to a native run of the same
// interleaving. The abstract's committed shape: hardware ~0, software
// stack ~13% on average.
func F1(cfg Config, w io.Writer) error {
	t := report.Table{
		Title:   "Recording execution-time overhead vs native",
		Columns: []string{"benchmark", "threads", "hw-only", "full stack"},
	}
	var splashFull, splashHW []float64
	for _, spec := range suite(cfg) {
		for _, threads := range cfg.Threads {
			// Average across schedules when Config.Seeds > 1: overheads
			// vary with the interleaving (lock convoys, barrier arrival
			// order), so the paper-style number is a mean over runs.
			var hws, fulls []float64
			for _, seed := range cfg.seedList() {
				hw, full, err := overheadOf(spec, threads, seed)
				if err != nil {
					return err
				}
				hws = append(hws, hw)
				fulls = append(fulls, full)
			}
			hw, full := stats.Mean(hws), stats.Mean(fulls)
			t.AddRow(spec.Name, report.U(uint64(threads)), report.Pct(hw), report.Pct(full))
			if spec.Kind == "splash" && threads == cfg.maxThreads() {
				splashFull = append(splashFull, full)
				splashHW = append(splashHW, hw)
			}
		}
	}
	if _, err := fmt.Fprint(w, t.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"SPLASH avg @%d threads: hw-only %s, full stack %s (paper: hw negligible, sw ~13%%)\n",
		cfg.maxThreads(), report.Pct(stats.Mean(splashHW)), report.Pct(stats.Mean(splashFull)))
	return err
}

// F2 reproduces the software-stack overhead breakdown: where the
// recording cycles go, per benchmark. In the paper the stack cost is
// dominated by input logging (copying syscall data) and driver
// crossings.
func F2(cfg Config, w io.Writer) error {
	threads := cfg.maxThreads()
	t := report.Table{
		Title: fmt.Sprintf("Recording-cycle breakdown (%d threads, %% of recording overhead)", threads),
		Columns: []string{"benchmark", "driver", "input-copy", "cbuf-flush",
			"sched", "hardware", "total cyc"},
	}
	for _, spec := range suite(cfg) {
		res, err := run(spec, threads, cfg.Seed, machine.ModeFull, nil)
		if err != nil {
			return err
		}
		total := res.Acct.RecordingTotal()
		pct := func(c perf.Component) string {
			if total == 0 {
				return "-"
			}
			return report.Pct(float64(res.Acct.Get(c)) / float64(total))
		}
		t.AddRow(spec.Name, pct(perf.CompRecDriver), pct(perf.CompRecInputCopy),
			pct(perf.CompRecCbufFlush), pct(perf.CompRecSched), pct(perf.CompRecHardware),
			report.U(total))
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// F3 reproduces the memory-log generation rate figure: chunk-log bytes
// per kilo-instruction, per benchmark and thread count. The abstract
// commits to this rate being insignificant.
func F3(cfg Config, w io.Writer) error {
	t := report.Table{
		Title:   "Memory (chunk) log generation rate",
		Columns: []string{"benchmark", "threads", "log bytes", "kinstr", "B/kinstr", "share of bus traffic"},
	}
	var rates []float64
	for _, spec := range suite(cfg) {
		for _, threads := range cfg.Threads {
			res, err := run(spec, threads, cfg.Seed, machine.ModeFull, nil)
			if err != nil {
				return err
			}
			kinstr := float64(res.Retired) / 1000
			rate := float64(res.Session.ChunkBytes()) / kinstr
			// Data moved by the memory system: every fill and writeback
			// is one 64-byte line. The paper's claim is that the log DMA
			// is negligible against this traffic.
			busBytes := 64 * (res.BusStats.BusRd + res.BusStats.BusRdX + res.BusStats.Writebacks)
			share := 0.0
			if busBytes > 0 {
				share = float64(res.Session.ChunkBytes()) / float64(busBytes)
			}
			t.AddRow(spec.Name, report.U(uint64(threads)), report.U(res.Session.ChunkBytes()),
				report.F(kinstr, 1), report.F(rate, 3), report.Pct(share))
			if spec.Kind == "splash" && threads == cfg.maxThreads() {
				rates = append(rates, rate)
			}
		}
	}
	if _, err := fmt.Fprint(w, t.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "SPLASH avg @%d threads: %s B/kinstr (paper: insignificant)\n",
		cfg.maxThreads(), report.F(stats.Mean(rates), 3))
	return err
}

// F4 reproduces the log-volume split: input log versus memory log bytes
// per benchmark. Syscall-heavy programs are input-dominated — the
// paper's argument for why the software stack, not the race log, is the
// recording bottleneck.
func F4(cfg Config, w io.Writer) error {
	threads := cfg.maxThreads()
	t := report.Table{
		Title:   fmt.Sprintf("Log volume by source (%d threads)", threads),
		Columns: []string{"benchmark", "chunk log B", "input log B", "input share"},
	}
	for _, spec := range suite(cfg) {
		res, err := run(spec, threads, cfg.Seed, machine.ModeFull, nil)
		if err != nil {
			return err
		}
		cb, ib := float64(res.Session.ChunkBytes()), float64(res.Session.InputBytes())
		t.AddRow(spec.Name, report.U(res.Session.ChunkBytes()), report.U(res.Session.InputBytes()),
			report.Pct(ib/(cb+ib)))
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// F5 reproduces the chunk-size distribution: summary percentiles per
// benchmark plus an explicit CDF for the most and least conflict-heavy
// kernels.
func F5(cfg Config, w io.Writer) error {
	threads := cfg.maxThreads()
	t := report.Table{
		Title:   fmt.Sprintf("Chunk sizes in instructions (%d threads)", threads),
		Columns: []string{"benchmark", "chunks", "mean", "p50<=", "p90<=", "p99<=", "max"},
	}
	cdfTargets := map[string]*stats.Sample{"counter": nil, "private": nil}
	for _, spec := range suite(cfg) {
		res, err := run(spec, threads, cfg.Seed, machine.ModeFull, nil)
		if err != nil {
			return err
		}
		var h stats.Histogram
		var sample stats.Sample
		for _, l := range res.Session.ChunkLogs() {
			for _, e := range l.Entries {
				h.Add(e.Size)
				sample.AddUint(e.Size)
			}
		}
		t.AddRow(spec.Name, report.U(h.Count()), report.F(h.Mean(), 1),
			report.U(h.Quantile(0.5)), report.U(h.Quantile(0.9)), report.U(h.Quantile(0.99)),
			report.U(h.Max()))
		if _, want := cdfTargets[spec.Name]; want {
			s := sample
			cdfTargets[spec.Name] = &s
		}
	}
	if _, err := fmt.Fprint(w, t.String()); err != nil {
		return err
	}
	for _, name := range []string{"counter", "private"} {
		s := cdfTargets[name]
		if s == nil {
			continue
		}
		series := report.Series{Title: "Chunk-size CDF: " + name, XLabel: "instrs", YLabel: "cum frac"}
		for _, p := range s.CDF(8) {
			series.Points = append(series.Points, report.Point{X: p.Value, Y: p.Fraction})
		}
		if _, err := fmt.Fprint(w, series.String()); err != nil {
			return err
		}
	}
	return nil
}

// F6 reproduces the chunk termination-reason breakdown per benchmark.
func F6(cfg Config, w io.Writer) error {
	threads := cfg.maxThreads()
	reasons := []chunk.Reason{
		chunk.ReasonConflictRAW, chunk.ReasonConflictWAR, chunk.ReasonConflictWAW,
		chunk.ReasonSigOverflow, chunk.ReasonEviction, chunk.ReasonCTROverflow,
		chunk.ReasonSyscall, chunk.ReasonTrap, chunk.ReasonSwitch, chunk.ReasonFlush,
	}
	cols := []string{"benchmark"}
	for _, r := range reasons {
		cols = append(cols, r.String())
	}
	t := report.Table{
		Title:   fmt.Sprintf("Chunk termination reasons (%d threads, %% of chunks)", threads),
		Columns: cols,
	}
	for _, spec := range suite(cfg) {
		res, err := run(spec, threads, cfg.Seed, machine.ModeFull, nil)
		if err != nil {
			return err
		}
		var c stats.Counter
		for _, s := range res.MRRStats {
			c.Merge(&s.Reasons)
		}
		row := []string{spec.Name}
		for _, r := range reasons {
			row = append(row, report.Pct(c.Fraction(int(r))))
		}
		t.AddRow(row...)
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// F7 reproduces the log-compression comparison: bytes per chunk entry
// under the raw 16-byte hardware format, plain varints, and the paper
// style timestamp-delta compression.
func F7(cfg Config, w io.Writer) error {
	threads := cfg.maxThreads()
	t := report.Table{
		Title:   fmt.Sprintf("Chunk-entry encoding size (%d threads, bytes/chunk)", threads),
		Columns: []string{"benchmark", "chunks", "fixed16", "varint", "ts-delta", "delta savings"},
	}
	for _, spec := range suite(cfg) {
		res, err := run(spec, threads, cfg.Seed, machine.ModeFull, nil)
		if err != nil {
			return err
		}
		var total int
		sizes := map[string]float64{}
		for _, enc := range chunk.Encodings() {
			n := 0
			for _, l := range res.Session.ChunkLogs() {
				n += l.EncodedSize(enc)
			}
			sizes[enc.Name()] = float64(n)
		}
		for _, l := range res.Session.ChunkLogs() {
			total += l.Len()
		}
		if total == 0 {
			continue
		}
		per := func(name string) string { return report.F(sizes[name]/float64(total), 2) }
		t.AddRow(spec.Name, report.U(uint64(total)), per("fixed16"), per("varint"), per("ts-delta"),
			report.Pct(1-sizes["ts-delta"]/sizes["fixed16"]))
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// F8 reproduces the replay-validation result: every benchmark's
// recording replays to the identical final state, with the replayer's
// work relative to the recorded execution (the paper's Pin-based
// replayer was likewise much slower than recording; exact speed was not
// the claim — fidelity was).
func F8(cfg Config, w io.Writer) error {
	threads := cfg.maxThreads()
	t := report.Table{
		Title:   fmt.Sprintf("Replay validation (%d threads)", threads),
		Columns: []string{"benchmark", "verified", "chunks", "inputs", "replay steps", "recorded instrs"},
	}
	for _, spec := range suite(cfg) {
		b, err := recordBundle(spec, threads, cfg.Seed, nil)
		if err != nil {
			return err
		}
		rr, err := core.Replay(spec.Build(threads), b)
		verdict := "OK"
		if err != nil {
			verdict = "REPLAY-ERR"
		} else if verr := core.Verify(b, rr); verr != nil {
			verdict = "MISMATCH"
		}
		var steps, chunks, inputs uint64
		if rr != nil {
			steps, chunks, inputs = rr.Steps, rr.ChunksExecuted, rr.InputsApplied
		}
		var recorded uint64
		for _, n := range b.RetiredPerThread {
			recorded += n
		}
		t.AddRow(spec.Name, verdict, report.U(chunks), report.U(inputs),
			report.U(steps), report.U(recorded))
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}
