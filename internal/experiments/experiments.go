// Package experiments regenerates the paper's evaluation artifacts —
// every table and figure reconstructed in DESIGN.md's experiment index —
// from the simulated QuickRec prototype. Each experiment returns
// rendered text; cmd/quickbench prints them and EXPERIMENTS.md records
// the measured-versus-paper comparison.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

// Config parameterises an experiment run.
type Config struct {
	// Threads lists the thread counts to sweep (the paper uses 1, 2, 4).
	Threads []int
	// Seed drives the scheduler; all modes of one comparison share it.
	Seed uint64
	// Scale multiplies workload input sizes (default 1; larger values
	// approach the paper's input regime — see workload.ScaledSuite).
	Scale uint64
	// Seeds averages overhead measurements over this many consecutive
	// scheduler seeds starting at Seed (default 1: single schedule).
	Seeds int
	// Workers is the worker-pool size for the parallel-replay experiment
	// (0 = 4, the prototype's core count; negative = all CPUs).
	Workers int
}

func (c Config) seedList() []uint64 {
	n := c.Seeds
	if n < 1 {
		n = 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = c.Seed + uint64(i)
	}
	return out
}

// DefaultConfig mirrors the paper's sweep.
func DefaultConfig() Config { return Config{Threads: []int{1, 2, 4}, Seed: 1} }

func (c Config) maxThreads() int {
	m := 1
	for _, t := range c.Threads {
		if t > m {
			m = t
		}
	}
	return m
}

// run executes one workload at one thread count in the given mode.
func run(spec workload.Spec, threads int, seed uint64, mode machine.RecordingMode,
	mut func(*machine.Config)) (*machine.Result, error) {
	prog := spec.Build(threads)
	cfg := machine.DefaultConfig()
	cfg.Mode = mode
	cfg.Threads = threads
	cfg.Seed = seed
	cfg.KernelSeed = seed + 1
	if mut != nil {
		mut(&cfg)
	}
	res, err := machine.New(prog, cfg).Run()
	if err != nil {
		return nil, fmt.Errorf("%s (threads=%d, %v): %w", spec.Name, threads, mode, err)
	}
	return res, nil
}

// recordBundle records one workload and returns the replayable bundle.
func recordBundle(spec workload.Spec, threads int, seed uint64,
	mut func(*machine.Config)) (*core.Bundle, error) {
	prog := spec.Build(threads)
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Threads = threads
	cfg.Seed = seed
	cfg.KernelSeed = seed + 1
	if mut != nil {
		mut(&cfg)
	}
	return core.Record(prog, cfg)
}

// Experiment is one runnable evaluation artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config, w io.Writer) error
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Prototype configuration", T1},
		{"T2", "Benchmark characteristics (4 threads, recorded)", T2},
		{"F1", "Recording execution-time overhead", F1},
		{"F2", "Software-stack overhead breakdown", F2},
		{"F3", "Memory-log generation rate", F3},
		{"F4", "Input log vs memory log volume", F4},
		{"F5", "Chunk-size distribution", F5},
		{"F6", "Chunk termination reasons", F6},
		{"F7", "Log encoding comparison", F7},
		{"F8", "Replay validation and relative replay time", F8},
		{"A1", "Software-only recording baseline", A1},
		{"A2", "Signature size vs chunking ablation", A2},
		{"A3", "REP residue logging ablation", A3},
		{"A4", "Flight-recorder checkpointing (always-on RnR extension)", A4},
		{"A5", "Instruction-counting convention ablation", A5},
		{"A6", "Stream framing overhead (crash-consistent streaming extension)", A6},
		{"A7", "Offline data-race detection over recorded logs", A7},
		{"A8", "Checkpoint-partitioned parallel replay speedup", A8},
		{"A9", "Flight-recorder retention window: salvage quality and cost vs K", A9},
		{"A10", "Serialization shootout: bundle wire formats vs stdlib strawmen", A10},
		{"A11", "Fleet replay/screen cost vs worker count", A11},
	}
}

// ByID finds an experiment (case-insensitive).
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range All() {
		fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(cfg, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// suite returns the evaluation workloads sorted by kind then name.
func suite(cfg Config) []workload.Spec {
	s := workload.ScaledSuite(cfg.Scale)
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Kind != s[j].Kind {
			return s[i].Kind > s[j].Kind // splash first
		}
		return s[i].Name < s[j].Name
	})
	return s
}

// splashOnly filters to the SPLASH-2-like kernels (the paper's suite).
func splashOnly(cfg Config) []workload.Spec {
	var out []workload.Spec
	for _, s := range suite(cfg) {
		if s.Kind == "splash" {
			out = append(out, s)
		}
	}
	return out
}
