package experiments

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/chunk"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/workload"
)

// streamRun records one workload with the segmented stream enabled and
// returns the run result plus the unframed log payload size (chunk logs
// in the session encoding plus the input log).
func streamRun(spec workload.Spec, threads int, seed, cadence uint64) (*machine.Result, int, error) {
	prog := spec.Build(threads)
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Threads = threads
	cfg.Seed = seed
	cfg.KernelSeed = seed + 1
	cfg.FlushEveryChunks = cadence
	var buf bytes.Buffer
	cfg.StreamTo = &buf
	res, err := machine.New(prog, cfg).Run()
	if err != nil {
		return nil, 0, fmt.Errorf("%s (threads=%d): %w", spec.Name, threads, err)
	}
	logBytes := 0
	for t := range res.RetiredPerThread {
		logBytes += res.Session.ChunkLog(t).EncodedSize(chunk.Delta{})
	}
	logBytes += res.Session.InputLog().EncodedSize()
	return res, logBytes, nil
}

// A6 measures the crash-consistent stream's framing overhead: the bytes
// the segmented format adds on top of the raw log payload (segment
// headers, CRC32C checksums, and commit metadata), per workload at the
// default flush cadence and across cadences on the largest-log kernel.
// The overhead has a fixed floor (manifest, final segment, one epoch of
// headers — about 160 bytes), so the percentage is dominated by it for
// tiny logs and falls toward the steady-state rate as volume grows.
func A6(cfg Config, w io.Writer) error {
	threads := cfg.maxThreads()
	t := report.Table{
		Title: fmt.Sprintf("Stream framing overhead at default cadence (%d threads)", threads),
		Columns: []string{"benchmark", "log B", "stream B", "framing B",
			"framing B/kinstr", "framing/log"},
	}
	type row struct {
		spec     workload.Spec
		logBytes int
	}
	biggest := row{}
	for _, spec := range splashOnly(cfg) {
		res, logBytes, err := streamRun(spec, threads, cfg.Seed, 0)
		if err != nil {
			return err
		}
		if logBytes > biggest.logBytes {
			biggest = row{spec, logBytes}
		}
		t.AddRow(spec.Name, report.U(uint64(logBytes)), report.U(res.StreamBytes),
			report.U(res.StreamFramingBytes),
			report.F(float64(res.StreamFramingBytes)/(float64(res.Retired)/1000), 2),
			report.Pct(float64(res.StreamFramingBytes)/float64(logBytes)))
	}
	if _, err := fmt.Fprint(w, t.String()); err != nil {
		return err
	}

	ct := report.Table{
		Title:   fmt.Sprintf("Framing vs flush cadence on %s (crash-window tradeoff)", biggest.spec.Name),
		Columns: []string{"flush every", "segments", "framing B", "framing/log"},
	}
	for _, cadence := range []uint64{64, 256, 1024, 4096} {
		res, logBytes, err := streamRun(biggest.spec, threads, cfg.Seed, cadence)
		if err != nil {
			return err
		}
		ct.AddRow(report.U(cadence), report.U(uint64(res.StreamSegments)),
			report.U(res.StreamFramingBytes),
			report.Pct(float64(res.StreamFramingBytes)/float64(logBytes)))
	}
	if _, err := fmt.Fprint(w, ct.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "framing = segment headers + CRC32C + commit metadata; smaller cadences\n"+
		"bound crash data loss tighter, larger ones amortize the per-epoch cost")
	return err
}
