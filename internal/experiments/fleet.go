package experiments

import (
	"fmt"
	"io"
	"os"
	"reflect"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/races"
	"repro/internal/replay"
	"repro/internal/report"
	"repro/internal/workload"
)

// a11WorkerCounts is the fleet-size sweep. Workers are in-process, so on
// a small host the upper counts measure dispatch overhead rather than
// genuine parallelism — the same caveat as A8.
var a11WorkerCounts = []int{1, 2, 4}

// A11 measures the remote-fleet executor: a recording is uploaded once
// per fleet size, then replayed and race-screened through a loopback
// ingest server with N attached workers. Every distributed run must be
// bit-identical to the serial local one (that is the dispatch layer's
// contract, enforced per cell by the conformance harness); the only
// thing allowed to vary with N is wall time. The "xlocal" columns give
// the distributed run's cost relative to the serial local one — the
// price of shipping jobs over the wire. As in A8, genuine speedup is
// bounded by the host's real core count: in-process workers on a
// single-CPU host time-slice one core, so there the sweep measures how
// dispatch overhead behaves as the fleet grows, not parallelism.
//
// Fleet workers re-derive programs by catalogue name, so this
// experiment records catalogue workloads exactly as ByName builds them
// and deliberately ignores cfg.Scale — a scaled build sharing a
// catalogue name would be rebuilt differently on the worker and
// rejected as a replay divergence.
func A11(cfg Config, w io.Writer) error {
	threads := cfg.maxThreads()
	t := report.Table{
		Title: fmt.Sprintf("Fleet replay/screen cost vs worker count (%d threads, 1 slot/worker)", threads),
		Columns: []string{"benchmark", "workers", "intervals", "replay ms", "xlocal",
			"races ms", "xlocal", "verified"},
	}
	for _, name := range []string{"fft", "water", "racy"} {
		spec, ok := workload.ByName(name)
		if !ok {
			return fmt.Errorf("A11: workload %q missing from catalogue", name)
		}
		prog := spec.Build(threads)
		rec, err := recordBundle(spec, threads, cfg.Seed, func(c *machine.Config) {
			c.CheckpointEveryInstrs = 2000
			c.CaptureSignatures = true
		})
		if err != nil {
			return err
		}
		serialStart := time.Now()
		serial, err := core.ReplayWorkers(prog, rec, 1)
		serialMS := time.Since(serialStart).Seconds() * 1e3
		if err != nil {
			return err
		}
		detectStart := time.Now()
		localRep, err := races.Detect(prog, rec)
		detectMS := time.Since(detectStart).Seconds() * 1e3
		if err != nil {
			return err
		}
		for _, workers := range a11WorkerCounts {
			replayMS, racesMS, verdict, err := a11Fleet(prog, rec, serial, localRep, workers)
			if err != nil {
				return fmt.Errorf("%s with %d workers: %w", name, workers, err)
			}
			t.AddRow(name, report.U(uint64(workers)),
				report.U(uint64(len(rec.IntervalCheckpoints)+1)),
				report.F(replayMS, 2), report.F(replayMS/serialMS, 2),
				report.F(racesMS, 2), report.F(racesMS/detectMS, 2), verdict)
		}
	}
	if _, err := fmt.Fprint(w, t.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "jobs reference content-addressed bundles; workers re-derive programs by name, so results are bit-identical at every fleet size")
	return err
}

// a11Fleet stands up a loopback fleet of the given size, runs one
// distributed replay and one distributed race detection, and checks
// both against the serial references.
func a11Fleet(prog *isa.Program, rec *core.Bundle, serial *replay.Result,
	localRep *races.Report, workers int) (replayMS, racesMS float64, verdict string, err error) {
	dir, err := os.MkdirTemp("", "quickrec-a11-")
	if err != nil {
		return 0, 0, "", err
	}
	defer os.RemoveAll(dir)
	scfg := ingest.DefaultConfig()
	scfg.StoreDir = dir
	scfg.Shards = 1
	scfg.Verifiers = 1
	srv, err := ingest.NewServer(scfg)
	if err != nil {
		return 0, 0, "", err
	}
	go srv.Serve()
	defer srv.Close()
	for i := 0; i < workers; i++ {
		go (&fleet.Worker{Addr: srv.Addr(), Slots: 1}).Run()
	}
	client, err := fleet.Dial(srv.Addr())
	if err != nil {
		return 0, 0, "", err
	}
	defer client.Close()

	start := time.Now()
	dist, err := client.Replay(prog, rec)
	replayMS = time.Since(start).Seconds() * 1e3
	if err != nil {
		return 0, 0, "", fmt.Errorf("distributed replay: %w", err)
	}
	start = time.Now()
	distRep, err := client.Races(prog, rec)
	racesMS = time.Since(start).Seconds() * 1e3
	if err != nil {
		return 0, 0, "", fmt.Errorf("distributed races: %w", err)
	}
	verdict = "OK (identical)"
	switch {
	case core.Verify(rec, dist) != nil:
		verdict = "VERIFY FAIL"
	case dist.MemChecksum != serial.MemChecksum || dist.Steps != serial.Steps:
		verdict = "REPLAY DIVERGED"
	case !reflect.DeepEqual(distRep, localRep):
		verdict = "RACES DIVERGED"
	}
	return replayMS, racesMS, verdict, nil
}
