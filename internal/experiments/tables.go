package experiments

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/mrr"
	"repro/internal/report"
)

// T1 prints the prototype configuration — the reproduction's analogue of
// the paper's platform table (the original: a Xeon board with four
// FPGA-emulated Pentium cores at 60 MHz, 32 KiB L1s, MESI over FSB,
// MRR signatures, and Capo3 with per-thread CBUFs).
func T1(_ Config, w io.Writer) error {
	mc := machine.DefaultConfig()
	cc := cache.DefaultConfig()
	rc := mrr.DefaultConfig()

	t := report.Table{Title: "Simulated QuickRec prototype configuration", Columns: []string{"parameter", "value"}}
	t.AddRow("cores", report.U(uint64(mc.Cores)))
	t.AddRow("L1 data cache", fmt.Sprintf("%d B (%d sets x %d ways x %d B lines)",
		cc.SizeBytes(), cc.Sets, cc.Ways, cache.LineSize))
	t.AddRow("coherence", "MESI, snooping broadcast bus")
	t.AddRow("clocking", "Lamport clocks piggybacked on all snoop acks")
	t.AddRow("read signature", fmt.Sprintf("%d-bit Bloom, %d hashes, saturates at %d lines",
		rc.ReadSig.Bits, rc.ReadSig.Hashes, rc.ReadSig.MaxInserts))
	t.AddRow("write signature", fmt.Sprintf("%d-bit Bloom, %d hashes, saturates at %d lines",
		rc.WriteSig.Bits, rc.WriteSig.Hashes, rc.WriteSig.MaxInserts))
	t.AddRow("chunk CTR", fmt.Sprintf("terminates at %d instructions", rc.MaxChunkInstr))
	t.AddRow("eviction termination", fmt.Sprintf("%v", rc.TerminateOnEviction))
	t.AddRow("CBUF per thread", fmt.Sprintf("%d B", mc.CbufBytes))
	t.AddRow("chunk log encoding", mc.Encoding.Name())
	t.AddRow("preemption quantum", fmt.Sprintf("%d instructions", mc.TimeSliceInstrs))
	_, err := fmt.Fprint(w, t.String())
	return err
}

// T2 prints per-benchmark characteristics under recording at the
// maximum thread count: instruction volume, memory traffic, kernel
// activity and input bytes — the reproduction of the paper's
// benchmark-characteristics table.
func T2(cfg Config, w io.Writer) error {
	threads := cfg.maxThreads()
	t := report.Table{
		Title: fmt.Sprintf("Benchmark characteristics (%d threads)", threads),
		Columns: []string{"benchmark", "kind", "instrs", "mem refs", "syscalls",
			"switches", "input B", "chunks"},
	}
	for _, spec := range suite(cfg) {
		res, err := run(spec, threads, cfg.Seed, machine.ModeFull, nil)
		if err != nil {
			return err
		}
		var chunks uint64
		for _, s := range res.MRRStats {
			chunks += s.Chunks
		}
		t.AddRow(spec.Name, spec.Kind, report.U(res.Retired), report.U(res.MemAccesses),
			report.U(res.Syscalls), report.U(res.CtxSwitches),
			report.U(uint64(res.Session.InputLog().DataBytes())), report.U(chunks))
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}
