package experiments

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// smallConfig keeps experiment tests quick: two thread counts.
func smallConfig() Config { return Config{Threads: []int{1, 4}, Seed: 1} }

func runExp(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	var buf bytes.Buffer
	if err := e.Run(smallConfig(), &buf); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.String()
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"T1", "T2", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10", "A11"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("%d experiments registered, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("slot %d = %s, want %s", i, all[i].ID, id)
		}
	}
	if _, ok := ByID("f3"); !ok {
		t.Error("ByID not case-insensitive")
	}
	if _, ok := ByID("Z9"); ok {
		t.Error("unknown ID found")
	}
}

func TestT1ListsConfiguration(t *testing.T) {
	out := runExp(t, "T1")
	for _, want := range []string{"cores", "MESI", "Bloom", "CBUF"} {
		if !strings.Contains(out, want) {
			t.Errorf("T1 missing %q", want)
		}
	}
}

func TestT2CoversSuite(t *testing.T) {
	out := runExp(t, "T2")
	for _, name := range []string{"barnes", "fft", "lu", "ocean", "radix", "raytrace", "volrend", "water", "counter", "ioheavy"} {
		if !strings.Contains(out, name) {
			t.Errorf("T2 missing benchmark %s", name)
		}
	}
}

// TestF1HeadlineShape pins the paper's central claims: the recording
// hardware is negligible and the software stack averages near 13% on the
// SPLASH suite.
func TestF1HeadlineShape(t *testing.T) {
	out := runExp(t, "F1")
	re := regexp.MustCompile(`hw-only (\d+\.\d)%, full stack (\d+\.\d)%`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no summary line in F1 output:\n%s", out)
	}
	hw, _ := strconv.ParseFloat(m[1], 64)
	full, _ := strconv.ParseFloat(m[2], 64)
	if hw > 1.5 {
		t.Errorf("hardware overhead %v%% not negligible", hw)
	}
	if full < 5 || full > 30 {
		t.Errorf("full-stack average %v%% outside the paper's ballpark (~13%%)", full)
	}
	if full < hw*3 {
		t.Errorf("software stack (%v%%) should clearly dominate hardware (%v%%)", full, hw)
	}
}

func TestF2InputCopyDominatesForIOHeavy(t *testing.T) {
	out := runExp(t, "F2")
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "ioheavy") {
			fields := strings.Fields(line)
			// columns: benchmark driver input-copy ...
			copyPct, err := strconv.ParseFloat(strings.TrimSuffix(fields[2], "%"), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", fields[2], err)
			}
			if copyPct < 40 {
				t.Errorf("ioheavy input-copy share %v%% unexpectedly small", copyPct)
			}
			return
		}
	}
	t.Fatal("no ioheavy row in F2")
}

func TestF3RatesFinite(t *testing.T) {
	out := runExp(t, "F3")
	if !strings.Contains(out, "B/kinstr") || !strings.Contains(out, "SPLASH avg") {
		t.Fatalf("malformed F3 output:\n%s", out)
	}
}

func TestF4InputDominatesIOHeavy(t *testing.T) {
	out := runExp(t, "F4")
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "ioheavy") {
			fields := strings.Fields(line)
			share, err := strconv.ParseFloat(strings.TrimSuffix(fields[3], "%"), 64)
			if err != nil {
				t.Fatal(err)
			}
			if share < 90 {
				t.Errorf("ioheavy input share = %v%%, want >90%%", share)
			}
			return
		}
	}
	t.Fatal("no ioheavy row in F4")
}

func TestF5HasCDFs(t *testing.T) {
	out := runExp(t, "F5")
	if !strings.Contains(out, "Chunk-size CDF: counter") || !strings.Contains(out, "Chunk-size CDF: private") {
		t.Errorf("F5 missing CDF sections:\n%s", out)
	}
}

func TestF6ReasonsSumSensible(t *testing.T) {
	out := runExp(t, "F6")
	// private should be overwhelmingly CTR/flush (no sharing).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "private") {
			if strings.Contains(line, "100.0%") || strings.Contains(line, "9") {
				return // some column holds the bulk
			}
		}
	}
	if !strings.Contains(out, "private") {
		t.Fatal("no private row in F6")
	}
}

func TestF7DeltaBeatsFixed(t *testing.T) {
	out := runExp(t, "F7")
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 6 || fields[0] == "benchmark" || !strings.HasSuffix(fields[5], "%") {
			continue
		}
		fixed, err1 := strconv.ParseFloat(fields[2], 64)
		delta, err2 := strconv.ParseFloat(fields[4], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		if delta >= fixed {
			t.Errorf("row %q: ts-delta (%v B) not smaller than fixed16 (%v B)", fields[0], delta, fixed)
		}
	}
}

func TestF8AllVerified(t *testing.T) {
	out := runExp(t, "F8")
	if strings.Contains(out, "MISMATCH") || strings.Contains(out, "REPLAY-ERR") {
		t.Fatalf("replay validation failures:\n%s", out)
	}
	if strings.Count(out, "OK") < 12 {
		t.Errorf("expected 13 OK rows:\n%s", out)
	}
}

func TestA1SoftwareDominates(t *testing.T) {
	out := runExp(t, "A1")
	re := regexp.MustCompile(`full stack (\d+\.\d)% vs software-only (\d+\.\d+)%`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no summary in A1:\n%s", out)
	}
	full, _ := strconv.ParseFloat(m[1], 64)
	sw, _ := strconv.ParseFloat(m[2], 64)
	if sw < 3*full {
		t.Errorf("software-only (%v%%) should dwarf the full stack (%v%%)", sw, full)
	}
}

func TestA2ChunksShrinkWithSignature(t *testing.T) {
	out := runExp(t, "A2")
	var chunks []float64
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 4 {
			if _, err := strconv.Atoi(fields[0]); err == nil {
				c, err := strconv.ParseFloat(fields[2], 64)
				if err == nil {
					chunks = append(chunks, c)
				}
			}
		}
	}
	if len(chunks) < 4 {
		t.Fatalf("sweep rows missing:\n%s", out)
	}
	for i := 1; i < len(chunks); i++ {
		if chunks[i] > chunks[i-1] {
			t.Errorf("chunk count rose with a bigger signature: %v", chunks)
		}
	}
}

func TestA3AblationBreaksReplay(t *testing.T) {
	out := runExp(t, "A3")
	lines := strings.Split(out, "\n")
	var onLine, offLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "on ") {
			onLine = l
		}
		if strings.HasPrefix(l, "off") {
			offLine = l
		}
	}
	if !strings.Contains(onLine, "5/5") || !strings.Contains(strings.Fields(onLine)[2], "5/5") {
		t.Errorf("residue-on runs not all exact: %q", onLine)
	}
	offFields := strings.Fields(offLine)
	if len(offFields) < 5 || offFields[4] == "0/5" {
		t.Errorf("ablated runs did not break replay: %q", offLine)
	}
}

func TestRunAllProducesEverySection(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := RunAll(smallConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, "=== "+e.ID+":") {
			t.Errorf("missing section %s", e.ID)
		}
	}
}

func TestA4FlightRecorder(t *testing.T) {
	out := runExp(t, "A4")
	if strings.Contains(out, "MISMATCH") || strings.Contains(out, "ERROR") {
		t.Fatalf("flight-recorder tails failed:\n%s", out)
	}
	if !strings.Contains(out, "OK (exact)") {
		t.Fatalf("no verified tails:\n%s", out)
	}
}

func TestA5CountingConvention(t *testing.T) {
	out := runExp(t, "A5")
	var mirrored, naive string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "(mirrored)") {
			mirrored = l
		}
		if strings.Contains(l, "(naive)") {
			naive = l
		}
	}
	if !strings.Contains(mirrored, "OK (exact)") {
		t.Errorf("mirrored convention not exact: %q", mirrored)
	}
	if !strings.Contains(naive, "DIVERGED") && !strings.Contains(naive, "MISMATCH") {
		t.Errorf("naive convention did not break: %q", naive)
	}
}

func TestA7RaceDetection(t *testing.T) {
	out := runExp(t, "A7")
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) < 8 || (f[0] != "racy" && f[0] != "racefree") {
			continue
		}
		threads, races := f[1], f[6]
		if f[0] == "racy" && threads == "4" && races == "0" {
			t.Errorf("racy at 4 threads confirmed no races: %q", l)
		}
		if f[0] == "racefree" && races != "0" {
			t.Errorf("racefree confirmed races: %q", l)
		}
	}
}

// TestScaleReducesLogRate pins the input-size explanation for F3's
// absolute rates: growing the workloads lowers bytes-per-kiloinstruction
// (the paper's full-size inputs sit far down this curve).
func TestScaleReducesLogRate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rate := func(scale uint64) float64 {
		var buf bytes.Buffer
		cfg := Config{Threads: []int{4}, Seed: 1, Scale: scale}
		if err := F3(cfg, &buf); err != nil {
			t.Fatal(err)
		}
		re := regexp.MustCompile(`SPLASH avg @4 threads: (\d+\.\d+) B/kinstr`)
		m := re.FindStringSubmatch(buf.String())
		if m == nil {
			t.Fatalf("no summary:\n%s", buf.String())
		}
		v, _ := strconv.ParseFloat(m[1], 64)
		return v
	}
	small, big := rate(1), rate(4)
	if big >= small {
		t.Errorf("log rate did not fall with scale: %v -> %v B/kinstr", small, big)
	}
}

func TestA8ParallelReplay(t *testing.T) {
	out := runExp(t, "A8")
	if !strings.Contains(out, "Parallel interval replay") {
		t.Fatalf("A8 output missing title:\n%s", out)
	}
	if strings.Contains(out, "MISMATCH") || strings.Contains(out, "DIVERGED") {
		t.Fatalf("A8 reports a replay mismatch:\n%s", out)
	}
	if !strings.Contains(out, "OK (identical)") {
		t.Fatalf("A8 verified no benchmark (all runs too short?):\n%s", out)
	}
}

func TestA10ShootoutHeadline(t *testing.T) {
	out := runExp(t, "A10")
	for _, codec := range []string{"v1", "v2-raw", "v2-lz", "gob", "json"} {
		if !strings.Contains(out, codec) {
			t.Errorf("A10 output missing codec %s", codec)
		}
	}
	// The headline claim: on ioheavy, the compressed v2 format is at
	// least 2x smaller than v1.
	io := out[strings.Index(out, "ioheavy"):]
	m := regexp.MustCompile(`v2-lz\s+\S+\s+\S+\s+\S+\s+\S+\s+(\d+\.\d+)x`).FindStringSubmatch(io)
	if m == nil {
		t.Fatalf("A10 ioheavy table has no v2-lz ratio:\n%s", io)
	}
	if ratio, _ := strconv.ParseFloat(m[1], 64); ratio < 2.0 {
		t.Errorf("A10 ioheavy v2-lz ratio %.2fx, want >= 2x", ratio)
	}
}

func TestA11FleetScaling(t *testing.T) {
	out := runExp(t, "A11")
	if !strings.Contains(out, "Fleet replay/screen cost") {
		t.Fatalf("A11 output missing title:\n%s", out)
	}
	for _, name := range []string{"fft", "water", "racy"} {
		if !strings.Contains(out, name) {
			t.Errorf("A11 output missing benchmark %s", name)
		}
	}
	if strings.Contains(out, "DIVERGED") || strings.Contains(out, "VERIFY FAIL") {
		t.Fatalf("A11 reports a distributed divergence:\n%s", out)
	}
	// Every (benchmark, fleet size) cell must be bit-identical to serial:
	// 3 benchmarks x 3 worker counts.
	if n := strings.Count(out, "OK (identical)"); n != 9 {
		t.Fatalf("A11 verified %d cells, want 9:\n%s", n, out)
	}
}
