package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/races"
	"repro/internal/replay"
	"repro/internal/report"
	"repro/internal/segment"
	"repro/internal/signature"
	"repro/internal/stats"
	"repro/internal/swrecord"
	"repro/internal/workload"
)

// A1 reproduces the paper's motivating comparison: software-only
// instrumentation recording (iDNA/PinPlay style, modelled analytically
// over the identical execution) versus QuickRec's hardware-only and
// full-stack overheads.
func A1(cfg Config, w io.Writer) error {
	threads := cfg.maxThreads()
	t := report.Table{
		Title:   fmt.Sprintf("Recording overhead: QuickRec vs software-only (%d threads)", threads),
		Columns: []string{"benchmark", "hw-only", "full stack", "sw-only (model)", "sw/full"},
	}
	params := swrecord.DefaultParams()
	var fulls, sws []float64
	for _, spec := range suite(cfg) {
		res, err := run(spec, threads, cfg.Seed, machine.ModeFull, nil)
		if err != nil {
			return err
		}
		hw, full := swrecord.HardwareOverhead(res)
		sw := swrecord.Overhead(res, params)
		ratio := 0.0
		if full > 0 {
			ratio = sw / full
		}
		t.AddRow(spec.Name, report.Pct(hw), report.Pct(full), report.Pct(sw), report.F(ratio, 1)+"x")
		if spec.Kind == "splash" {
			fulls = append(fulls, full)
			sws = append(sws, sw)
		}
	}
	if _, err := fmt.Fprint(w, t.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "SPLASH avg: full stack %s vs software-only %s\n",
		report.Pct(stats.Mean(fulls)), report.Pct(stats.Mean(sws)))
	return err
}

// A2 sweeps the signature budget on a conflict-heavy kernel: smaller
// Bloom filters saturate sooner (shorter chunks, more log) and alias
// more (false conflicts). This is the design-space argument behind the
// prototype's signature sizing.
func A2(cfg Config, w io.Writer) error {
	spec, ok := workload.ByName("fft")
	if !ok {
		return errors.New("fft workload missing")
	}
	threads := cfg.maxThreads()
	t := report.Table{
		Title:   fmt.Sprintf("Signature sweep on fft (%d threads)", threads),
		Columns: []string{"sig bits", "max lines", "chunks", "mean chunk", "sig-ovf share", "false snoop hits"},
	}
	for _, bits := range []uint{256, 512, 1024, 2048, 4096} {
		bits := bits
		maxInserts := bits / 6 // keep expected false-positive rate roughly constant
		res, err := run(spec, threads, cfg.Seed, machine.ModeHardwareOnly, func(c *machine.Config) {
			sc := signature.Config{Bits: bits, Hashes: 2, MaxInserts: maxInserts, TrackExact: true}
			c.MRR.ReadSig = sc
			c.MRR.WriteSig = sc
		})
		if err != nil {
			return err
		}
		var h stats.Histogram
		var reasons stats.Counter
		for _, l := range res.Session.ChunkLogs() {
			for _, e := range l.Entries {
				h.Add(e.Size)
			}
		}
		var falseHits uint64
		for _, s := range res.MRRStats {
			reasons.Merge(&s.Reasons)
			falseHits += s.SigFalseHits
		}
		t.AddRow(report.U(uint64(bits)), report.U(uint64(maxInserts)), report.U(h.Count()),
			report.F(h.Mean(), 1),
			report.Pct(reasons.Fraction(int(chunk.ReasonSigOverflow))),
			report.U(falseHits))
	}
	if _, err := fmt.Fprint(w, t.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "note: smaller signatures => earlier saturation => shorter chunks and a larger log")
	return err
}

// A3 demonstrates why the hardware logs REP-instruction residues: with
// residue logging disabled (the ablation), a chunk boundary inside a
// REPMOVS cannot be positioned during replay and the run diverges or
// verifies dirty; with it enabled, replay is exact.
func A3(cfg Config, w io.Writer) error {
	spec, ok := workload.ByName("repcopy")
	if !ok {
		return errors.New("repcopy workload missing")
	}
	threads := cfg.maxThreads()
	t := report.Table{
		Title:   "REP residue ablation on repcopy (5 schedules each)",
		Columns: []string{"residue logging", "rep-split chunks", "exact", "diverged/mismatched"},
	}
	for _, drop := range []bool{false, true} {
		exact, broken, splits := 0, 0, 0
		for seed := cfg.Seed; seed < cfg.Seed+5; seed++ {
			b, err := recordBundle(spec, threads, seed, func(c *machine.Config) {
				c.MRR.DropRepResidue = drop
			})
			if err != nil {
				return err
			}
			for _, l := range b.ChunkLogs {
				for _, e := range l.Entries {
					if e.RepResidue > 0 {
						splits++
					}
				}
			}
			rr, err := core.Replay(spec.Build(threads), b)
			var dv *replay.DivergenceError
			switch {
			case errors.As(err, &dv):
				broken++
			case err != nil:
				return err
			default:
				if core.Verify(b, rr) != nil {
					broken++
				} else {
					exact++
				}
			}
		}
		mode := "on"
		if drop {
			mode = "off (ablated)"
		}
		t.AddRow(mode, report.U(uint64(splits)), fmt.Sprintf("%d/5", exact), fmt.Sprintf("%d/5", broken))
	}
	if _, err := fmt.Fprint(w, t.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "without residues the replayer positions split REP instructions wrongly and the run no longer reproduces")
	return err
}

// A5 reproduces the paper's instruction-counting lesson: the recording
// hardware's chunk counter ticks like a performance counter (counting
// every REP iteration), while a software replayer naturally counts
// architecturally retired instructions. If the replayer does not adopt
// the hardware's convention, chunk boundaries cannot be positioned and
// replay breaks; with the convention mirrored, replay is exact.
func A5(cfg Config, w io.Writer) error {
	spec, ok := workload.ByName("repcopy")
	if !ok {
		return errors.New("repcopy workload missing")
	}
	threads := cfg.maxThreads()
	t := report.Table{
		Title:   "Instruction-counting convention ablation on repcopy",
		Columns: []string{"hardware counts", "replayer counts", "replay"},
	}
	// Record with hardware-style counting (REP iterations tick the CTR).
	full, err := recordBundle(spec, threads, cfg.Seed, func(c *machine.Config) {
		c.MRR.CountRepIterations = true
	})
	if err != nil {
		return err
	}
	for _, mirror := range []bool{true, false} {
		b := *full
		b.CountRepIterations = mirror
		verdict := "OK (exact)"
		rr, err := core.Replay(spec.Build(threads), &b)
		var dv *replay.DivergenceError
		switch {
		case errors.As(err, &dv):
			verdict = "DIVERGED: " + dv.Reason
		case err != nil:
			verdict = "ERROR"
		default:
			if core.Verify(&b, rr) != nil {
				verdict = "STATE MISMATCH"
			}
		}
		replayerMode := "iterations (mirrored)"
		if !mirror {
			replayerMode = "architectural (naive)"
		}
		t.AddRow("iterations", replayerMode, verdict)
	}
	if _, err := fmt.Fprint(w, t.String()); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "the replayer must adopt the hardware's counting convention — the paper's x86 counting lesson")
	return err
}

// A4 evaluates the flight-recorder extension (the paper's always-on-RnR
// direction): periodic checkpoints bound the log a replayer needs to the
// tail since the last snapshot. For each kernel we record with
// checkpointing, derive the tail bundle, verify it replays to the
// identical final state, and report the log-volume reduction.
func A4(cfg Config, w io.Writer) error {
	threads := cfg.maxThreads()
	t := report.Table{
		Title:   fmt.Sprintf("Flight recorder: tail bundles vs full logs (%d threads)", threads),
		Columns: []string{"benchmark", "ckpts", "full chunks", "tail chunks", "tail inputs", "tail replay"},
	}
	for _, spec := range splashOnly(cfg) {
		full, err := recordBundle(spec, threads, cfg.Seed, func(c *machine.Config) {
			c.CheckpointEveryInstrs = 60_000
		})
		if err != nil {
			return err
		}
		nCkpts := full.RecordStats.Checkpoints
		var fullChunks int
		for _, l := range full.ChunkLogs {
			fullChunks += l.Len()
		}
		if nCkpts == 0 {
			t.AddRow(spec.Name, "0", report.U(uint64(fullChunks)), "-", "-", "(run too short)")
			continue
		}
		tail, err := core.Tail(full)
		if err != nil {
			return err
		}
		var tailChunks int
		for _, l := range tail.ChunkLogs {
			tailChunks += l.Len()
		}
		verdict := "OK (exact)"
		rr, err := core.Replay(spec.Build(threads), tail)
		if err != nil {
			verdict = "ERROR"
		} else if core.Verify(tail, rr) != nil {
			verdict = "MISMATCH"
		}
		t.AddRow(spec.Name, report.U(nCkpts), report.U(uint64(fullChunks)),
			report.U(uint64(tailChunks)), report.U(uint64(tail.InputLog.Len())), verdict)
	}
	if _, err := fmt.Fprint(w, t.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "replay needs only the post-checkpoint tail: always-on recording with bounded logs")
	return err
}

// A7 runs the offline two-phase data-race detector over recordings of
// the race-classified microbenchmark pair: signature screening finds the
// Lamport-concurrent chunk pairs with intersecting Bloom signatures, and
// happens-before confirmation over an access-traced replay keeps only
// the real races. The surviving fraction is the signatures' measured
// false-positive rate — the aliasing cost of chunk-sized Bloom filters.
func A7(cfg Config, w io.Writer) error {
	t := report.Table{
		Title:   "Offline race detection: screening vs confirmation",
		Columns: []string{"workload", "threads", "chunks", "conc pairs", "candidates", "confirmed", "races", "bloom FP rate"},
	}
	for _, name := range []string{"racy", "racefree"} {
		spec, ok := workload.ByName(name)
		if !ok {
			return fmt.Errorf("%s workload missing", name)
		}
		for _, threads := range cfg.Threads {
			prog := spec.Build(threads)
			mcfg := machine.DefaultConfig()
			mcfg.Mode = machine.ModeFull
			mcfg.Threads = threads
			mcfg.Seed = cfg.Seed
			mcfg.KernelSeed = cfg.Seed + 1
			mcfg.CaptureSignatures = true
			b, err := core.Record(prog, mcfg)
			if err != nil {
				return fmt.Errorf("%s (threads=%d): %w", name, threads, err)
			}
			rep, err := races.Detect(prog, b)
			if err != nil {
				return fmt.Errorf("%s (threads=%d): %w", name, threads, err)
			}
			t.AddRow(name, report.U(uint64(threads)), report.U(uint64(rep.TotalChunks)),
				report.U(uint64(rep.ConcurrentPairs)), report.U(uint64(len(rep.Candidates))),
				report.U(uint64(rep.ConfirmedPairs)), report.U(uint64(len(rep.Races))),
				report.Pct(rep.FalsePositiveRate))
		}
	}
	if _, err := fmt.Fprint(w, t.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "bloom screening over-approximates (false positives, never false negatives); replay confirmation only shrinks it")
	return err
}

// A8 measures the checkpoint-partitioned parallel replay engine: each
// benchmark is recorded with flight-recorder checkpoints, then replayed
// serially and on a worker pool. Both replays must verify against the
// recording — parallel replay is bit-identical to serial by
// construction, so the only thing that changes is wall time. Speedup is
// bounded by the interval count and by the host's real core count; on a
// single-CPU host the measurement degenerates to the engine's overhead.
func A8(cfg Config, w io.Writer) error {
	threads := cfg.maxThreads()
	workers := cfg.Workers
	if workers == 0 {
		workers = 4
	}
	t := report.Table{
		Title:   fmt.Sprintf("Parallel interval replay (%d threads, %d workers)", threads, workers),
		Columns: []string{"benchmark", "ckpts", "intervals", "serial ms", "parallel ms", "speedup", "verified"},
	}
	for _, spec := range splashOnly(cfg) {
		full, err := recordBundle(spec, threads, cfg.Seed, func(c *machine.Config) {
			c.CheckpointEveryInstrs = 60_000
		})
		if err != nil {
			return err
		}
		nCkpts := len(full.IntervalCheckpoints)
		if nCkpts == 0 {
			t.AddRow(spec.Name, "0", "1", "-", "-", "-", "(run too short)")
			continue
		}
		prog := spec.Build(threads)
		serialStart := time.Now()
		sr, err := core.ReplayWorkers(prog, full, 1)
		serialMS := time.Since(serialStart).Seconds() * 1e3
		if err != nil {
			return err
		}
		parStart := time.Now()
		pr, err := core.ReplayWorkers(prog, full, workers)
		parMS := time.Since(parStart).Seconds() * 1e3
		if err != nil {
			return err
		}
		verdict := "OK (identical)"
		if core.Verify(full, sr) != nil || core.Verify(full, pr) != nil {
			verdict = "MISMATCH"
		} else if sr.MemChecksum != pr.MemChecksum || sr.Steps != pr.Steps {
			verdict = "DIVERGED"
		}
		t.AddRow(spec.Name, report.U(uint64(nCkpts)), report.U(uint64(nCkpts+1)),
			report.F(serialMS, 2), report.F(parMS, 2), report.F(serialMS/parMS, 2), verdict)
	}
	if _, err := fmt.Fprint(w, t.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "checkpoints partition the logs exactly; intervals replay concurrently and validate against the next checkpoint")
	return err
}

// A9 evaluates the flight-recorder retention window (the always-on
// deployment regime): a long-running request server is recorded through
// rings of increasing size K, then the recorder is "crashed" inside the
// open interval and the dump salvaged. Reported per K: the window's
// on-disk footprint against the unbounded stream, recording cycles (the
// ring's buffering cost), and salvage quality — how many checkpoint
// intervals the torn dump retains and what fraction of the run a replay
// from the window base recovers.
func A9(cfg Config, w io.Writer) error {
	threads := cfg.maxThreads()
	prog := workload.ReqServer(96, 4, 16, threads)
	record := func(k uint64) (*core.Bundle, []byte, error) {
		mcfg := machine.DefaultConfig()
		mcfg.Mode = machine.ModeFull
		mcfg.Threads = threads
		mcfg.Seed = cfg.Seed
		mcfg.KernelSeed = cfg.Seed + 1
		mcfg.CheckpointEveryInstrs = 2000
		mcfg.FlushEveryChunks = 8
		mcfg.RetainCheckpoints = k
		var buf bytes.Buffer
		b, err := core.StreamRecord(prog, mcfg, &buf)
		return b, buf.Bytes(), err
	}
	full, udata, err := record(0)
	if err != nil {
		return err
	}
	var retired uint64
	for _, r := range full.RetiredPerThread {
		retired += r
	}
	maxSteps := retired*4 + 100_000
	t := report.Table{
		Title: fmt.Sprintf("Flight-recorder retention window (reqserver, %d threads, ckpt every 2000 instrs, %d total ckpts)",
			threads, len(full.IntervalCheckpoints)),
		Columns: []string{"K", "bytes", "vs unbounded", "cycles", "ckpts kept", "covered instrs", "of run"},
	}
	for _, k := range []uint64{1, 2, 4, 8, 0} {
		b, data, err := record(k)
		if err != nil {
			return err
		}
		label := report.U(k)
		if k == 0 {
			label = "∞"
		}
		// Crash inside the open interval: torn through the last segment.
		offs := segment.Offsets(data)
		cut := len(data)
		if len(offs) >= 2 {
			cut = (offs[len(offs)-2] + offs[len(offs)-1]) / 2
		}
		sv, err := core.SalvageStream(data[:cut])
		if err != nil {
			return err
		}
		rr, err := core.ReplayBounded(prog, sv.Bundle, maxSteps)
		if err != nil {
			return err
		}
		var replayed uint64
		for _, r := range rr.RetiredPerThread {
			replayed += r
		}
		// A windowed replay starts at the base checkpoint (its state is
		// materialised, not re-executed), so the span the dump actually
		// covers is what lies beyond the base.
		base, _ := sv.WindowBase()
		span := replayed - base
		t.AddRow(label, report.U(uint64(len(data))),
			report.F(float64(len(data))/float64(len(udata)), 2),
			report.U(b.RecordStats.Cycles),
			report.U(uint64(len(sv.Bundle.IntervalCheckpoints))),
			report.U(span),
			report.F(float64(span)/float64(retired), 2))
	}
	if _, err := fmt.Fprint(w, t.String()); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "the ring bounds disk cost at ~K intervals; a crash still yields the last K checkpoints' worth of replayable execution")
	return err
}
