package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestA6ReportsFramingColumns(t *testing.T) {
	out := runExp(t, "A6")
	for _, want := range []string{"framing/log", "flush cadence", "CRC32C"} {
		if !strings.Contains(out, want) {
			t.Errorf("A6 missing %q", want)
		}
	}
}

// TestFramingOverheadBudget pins the acceptance criterion: at the
// default flush cadence, framing (headers + checksums + commit metadata)
// stays under 5% of the log payload once the log is large enough to
// amortize the fixed ~160-byte stream skeleton. Measured on the two
// largest-log kernels at the paper-regime input scale.
func TestFramingOverheadBudget(t *testing.T) {
	for _, name := range []string{"fmm", "fft"} {
		var spec workload.Spec
		found := false
		for _, s := range workload.ScaledSuite(4) {
			if s.Name == name {
				spec, found = s, true
			}
		}
		if !found {
			t.Fatalf("workload %s missing from scaled suite", name)
		}
		res, logBytes, err := streamRun(spec, 4, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		pct := 100 * float64(res.StreamFramingBytes) / float64(logBytes)
		t.Logf("%s: framing %d B over %d B of logs = %.2f%%", name, res.StreamFramingBytes, logBytes, pct)
		if pct >= 5 {
			t.Errorf("%s: framing overhead %.2f%% exceeds the 5%% budget", name, pct)
		}
	}
}
