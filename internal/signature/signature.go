// Package signature implements the Bloom-filter address signatures used
// by the QuickRec Memory Race Recorder. Each core keeps one read and one
// write signature of the cache-line addresses touched in the current
// chunk; incoming snoops are tested against them to detect inter-thread
// conflicts without per-line metadata.
//
// The filter is deliberately hardware-shaped: a fixed bit array indexed
// by k independent hash functions derived from a 64-bit mixer, an exact
// insertion counter used to bound the false-positive rate (the MRR
// terminates the chunk when the counter saturates), and an optional
// exact shadow set used only for false-positive accounting in
// experiments.
package signature

import (
	"fmt"
	"math/bits"

	"repro/internal/wire"
)

// Config parameterises a signature.
type Config struct {
	// Bits is the number of bits in the filter. Must be a power of two no
	// smaller than one 64-bit word: the bit array is stored and serialized
	// as whole words, so sub-word filters have no consistent encoding.
	Bits uint
	// Hashes is the number of hash functions (k).
	Hashes uint
	// MaxInserts bounds the number of distinct line insertions before the
	// signature reports saturation; the MRR terminates the chunk then.
	// Zero means no bound.
	MaxInserts uint
	// TrackExact additionally maintains an exact set of inserted lines so
	// experiments can report false-positive rates. Costs memory; off in
	// normal operation.
	TrackExact bool
}

// DefaultConfig mirrors the prototype's modest on-core budget: a 1024-bit
// filter with two hash functions, saturating after 192 distinct lines.
func DefaultConfig() Config {
	return Config{Bits: 1024, Hashes: 2, MaxInserts: 192}
}

// Signature is a Bloom filter over cache-line addresses.
type Signature struct {
	cfg     Config
	words   []uint64
	mask    uint64
	inserts uint
	exact   map[uint64]struct{}

	// accounting
	tests     uint64
	hits      uint64
	falseHits uint64
}

// New returns an empty signature for the given configuration.
// It panics if the configuration is invalid (a construction-time
// programming error, not a runtime condition).
func New(cfg Config) *Signature {
	// Bits below one word would make New (one padded word) and
	// Marshal/Unmarshal (Bits/64 = zero words) disagree about the array
	// size; reject the configuration outright, in both places.
	if cfg.Bits < 64 || cfg.Bits&(cfg.Bits-1) != 0 {
		panic("signature: Bits must be a power of two >= 64")
	}
	if cfg.Hashes == 0 || cfg.Hashes > 8 {
		panic("signature: Hashes must be in 1..8")
	}
	s := &Signature{
		cfg:   cfg,
		words: make([]uint64, cfg.Bits/64),
		mask:  uint64(cfg.Bits) - 1,
	}
	if cfg.TrackExact {
		s.exact = make(map[uint64]struct{})
	}
	return s
}

// mix64 is the splitmix64 finalizer; a cheap, well-distributed mixer that
// stands in for the XOR-fold hash trees real signature hardware uses.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// bitIndex returns the bit position for hash function i of line address a.
func (s *Signature) bitIndex(a uint64, i uint) uint64 {
	h := mix64(a + uint64(i)*0x9e3779b97f4a7c15)
	return h & s.mask
}

// Insert adds a cache-line address. It returns true if the signature has
// saturated (reached MaxInserts distinct insertions) and the chunk should
// be terminated. Re-inserting a line already present does not advance the
// saturation counter when exact tracking is enabled; without it, a line
// whose every hash bit is already set is treated as present.
func (s *Signature) Insert(line uint64) (saturated bool) {
	if s.exact != nil {
		if _, ok := s.exact[line]; ok {
			return false
		}
		s.exact[line] = struct{}{}
	} else if s.testBits(line) {
		// All bits already set: either a duplicate or an alias; hardware
		// cannot tell, and neither grows the filter, so don't count it.
		return false
	}
	for i := uint(0); i < s.cfg.Hashes; i++ {
		idx := s.bitIndex(line, i)
		s.words[idx/64] |= 1 << (idx % 64)
	}
	s.inserts++
	return s.cfg.MaxInserts > 0 && s.inserts >= s.cfg.MaxInserts
}

func (s *Signature) testBits(line uint64) bool {
	for i := uint(0); i < s.cfg.Hashes; i++ {
		idx := s.bitIndex(line, i)
		if s.words[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Test reports whether the signature may contain the line (Bloom
// semantics: false negatives are impossible, false positives are not).
func (s *Signature) Test(line uint64) bool {
	s.tests++
	hit := s.testBits(line)
	if hit {
		s.hits++
		if s.exact != nil {
			if _, ok := s.exact[line]; !ok {
				s.falseHits++
			}
		}
	}
	return hit
}

// Clear empties the signature (chunk boundary). Accounting counters are
// preserved; Inserts resets.
func (s *Signature) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.inserts = 0
	if s.exact != nil {
		s.exact = make(map[uint64]struct{})
	}
}

// Inserts returns the number of distinct insertions since the last Clear.
func (s *Signature) Inserts() uint { return s.inserts }

// Saturated reports whether the signature has reached its insertion bound.
func (s *Signature) Saturated() bool {
	return s.cfg.MaxInserts > 0 && s.inserts >= s.cfg.MaxInserts
}

// Occupancy returns the fraction of set bits (0..1).
func (s *Signature) Occupancy() float64 {
	var set int
	for _, w := range s.words {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(s.cfg.Bits)
}

// Stats reports lifetime test/hit/false-hit counts. FalseHits is only
// meaningful when the signature was built with TrackExact.
func (s *Signature) Stats() (tests, hits, falseHits uint64) {
	return s.tests, s.hits, s.falseHits
}

// Config returns the configuration the signature was built with.
func (s *Signature) Config() Config { return s.cfg }

// Empty reports whether no bits are set (no line has been inserted since
// the last Clear).
func (s *Signature) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether the two filters share any set bit — the
// hardware conflict test between a remote access set and a local one.
// Bloom semantics carry over: a shared line always intersects, and an
// intersection may be an alias; an empty signature never intersects
// anything. Both signatures must have the same geometry (Bits).
func (s *Signature) Intersects(o *Signature) bool {
	if s.cfg.Bits != o.cfg.Bits || s.cfg.Hashes != o.cfg.Hashes {
		panic("signature: Intersects requires identical geometry")
	}
	for i := range s.words {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// sigMagic guards serialized signatures.
var sigMagic = [4]byte{'Q', 'R', 'S', 'G'}

const sigVersion = 1

// ErrCorruptSignature reports a malformed serialized signature. It
// wraps the shared wire.ErrCorrupt sentinel so signature decode faults
// triage exactly like chunk-, input- and segment-log faults (harness
// fault classification is a single errors.Is against the shared
// sentinels, with no signature special case).
var ErrCorruptSignature = fmt.Errorf("signature: corrupt serialized signature: %w", wire.ErrCorrupt)

// Marshal serializes the filter: configuration, insertion counter and bit
// array. The exact shadow set and the lifetime accounting counters are
// runtime-only diagnostics and are not serialized; an unmarshalled
// signature answers Test/Intersects/Saturated identically to the
// original.
func (s *Signature) Marshal() []byte {
	a := wire.AppenderOf(make([]byte, 0, 16+len(s.words)*8))
	a.Raw(sigMagic[:])
	a.Byte(sigVersion)
	a.Uvarint(uint64(s.cfg.Bits))
	a.Uvarint(uint64(s.cfg.Hashes))
	a.Uvarint(uint64(s.cfg.MaxInserts))
	a.Uvarint(uint64(s.inserts))
	for _, w := range s.words {
		a.U64(w)
	}
	return a.Buf
}

// Unmarshal parses a signature serialized with Marshal. Malformed input
// yields an error, never a panic: the configuration is re-validated
// before the filter is materialized.
func Unmarshal(data []byte) (*Signature, error) {
	if len(data) < 5 || [4]byte(data[0:4]) != sigMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptSignature)
	}
	if data[4] != sigVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptSignature, data[4])
	}
	c := wire.CursorWith(data, ErrCorruptSignature, ErrCorruptSignature)
	c.Skip(5)
	bitsN, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	hashes, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	maxIns, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	inserts, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	// Mirror New's validation exactly: sub-word sizes have no consistent
	// word-array encoding and are rejected, not special-cased.
	if bitsN < 64 || bitsN > 1<<24 || bitsN&(bitsN-1) != 0 {
		return nil, fmt.Errorf("%w: Bits %d not a supported power of two >= 64", ErrCorruptSignature, bitsN)
	}
	if hashes == 0 || hashes > 8 {
		return nil, fmt.Errorf("%w: Hashes %d out of 1..8", ErrCorruptSignature, hashes)
	}
	s := New(Config{Bits: uint(bitsN), Hashes: uint(hashes), MaxInserts: uint(maxIns)})
	if c.Remaining() != len(s.words)*8 {
		return nil, fmt.Errorf("%w: %d payload bytes for %d words", ErrCorruptSignature, c.Remaining(), len(s.words))
	}
	for i := range s.words {
		if s.words[i], err = c.U64(); err != nil {
			return nil, err
		}
	}
	s.inserts = uint(inserts)
	return s, nil
}
