package signature

import (
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := func(lines []uint64) bool {
		s := New(Config{Bits: 1024, Hashes: 2})
		for _, l := range lines {
			s.Insert(l)
		}
		for _, l := range lines {
			if !s.Test(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClearEmpties(t *testing.T) {
	s := New(DefaultConfig())
	for i := uint64(0); i < 50; i++ {
		s.Insert(i * 64)
	}
	if s.Inserts() != 50 {
		t.Errorf("Inserts = %d, want 50", s.Inserts())
	}
	s.Clear()
	if s.Inserts() != 0 {
		t.Errorf("Inserts after Clear = %d, want 0", s.Inserts())
	}
	if s.Occupancy() != 0 {
		t.Errorf("Occupancy after Clear = %v, want 0", s.Occupancy())
	}
	hits := 0
	for i := uint64(0); i < 50; i++ {
		if s.Test(i * 64) {
			hits++
		}
	}
	if hits != 0 {
		t.Errorf("%d stale hits after Clear", hits)
	}
}

func TestSaturation(t *testing.T) {
	s := New(Config{Bits: 4096, Hashes: 2, MaxInserts: 10})
	saturated := false
	for i := uint64(0); i < 10; i++ {
		saturated = s.Insert(i)
	}
	if !saturated {
		t.Error("expected saturation at 10th distinct insert")
	}
	if !s.Saturated() {
		t.Error("Saturated() = false after saturation")
	}
}

func TestDuplicateInsertsDoNotSaturate(t *testing.T) {
	s := New(Config{Bits: 4096, Hashes: 2, MaxInserts: 5, TrackExact: true})
	for i := 0; i < 100; i++ {
		if s.Insert(0xabc) {
			t.Fatal("duplicate inserts saturated the signature")
		}
	}
	if s.Inserts() != 1 {
		t.Errorf("Inserts = %d, want 1", s.Inserts())
	}
}

func TestDuplicateInsertsWithoutExactTracking(t *testing.T) {
	s := New(Config{Bits: 4096, Hashes: 2, MaxInserts: 5})
	for i := 0; i < 100; i++ {
		if s.Insert(0xabc) {
			t.Fatal("duplicate inserts saturated the signature")
		}
	}
	if s.Inserts() != 1 {
		t.Errorf("Inserts = %d, want 1 (bits already set => treated as present)", s.Inserts())
	}
}

func TestFalsePositiveAccounting(t *testing.T) {
	s := New(Config{Bits: 64, Hashes: 2, TrackExact: true})
	// Densely populate a tiny filter to force aliasing.
	for i := uint64(0); i < 30; i++ {
		s.Insert(i)
	}
	fp := 0
	for i := uint64(1000); i < 2000; i++ {
		if s.Test(i) {
			fp++
		}
	}
	tests, hits, falseHits := s.Stats()
	if tests < 1000 {
		t.Errorf("tests = %d, want >= 1000", tests)
	}
	if falseHits != uint64(fp) {
		t.Errorf("falseHits = %d, want %d", falseHits, fp)
	}
	if hits < falseHits {
		t.Errorf("hits %d < falseHits %d", hits, falseHits)
	}
	if fp == 0 {
		t.Error("expected some aliasing in a 64-bit filter with 30 lines")
	}
}

func TestOccupancyGrows(t *testing.T) {
	s := New(Config{Bits: 1024, Hashes: 2})
	prev := s.Occupancy()
	if prev != 0 {
		t.Fatalf("initial occupancy %v, want 0", prev)
	}
	for i := uint64(0); i < 100; i++ {
		s.Insert(mixProbe(i))
		occ := s.Occupancy()
		if occ < prev {
			t.Fatalf("occupancy decreased: %v -> %v", prev, occ)
		}
		prev = occ
	}
	if prev <= 0 || prev > 1 {
		t.Errorf("occupancy %v out of (0,1]", prev)
	}
}

func mixProbe(x uint64) uint64 { return mix64(x) }

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Bits: 0, Hashes: 2},
		{Bits: 100, Hashes: 2}, // not a power of two
		{Bits: 1024, Hashes: 0},
		{Bits: 1024, Hashes: 9},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestConfigAccessor(t *testing.T) {
	cfg := Config{Bits: 2048, Hashes: 3, MaxInserts: 64}
	s := New(cfg)
	if got := s.Config(); got != cfg {
		t.Errorf("Config() = %+v, want %+v", got, cfg)
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	// With the default 1024-bit / 2-hash / 192-line budget, the false hit
	// rate near saturation should stay below ~25%.
	s := New(Config{Bits: 1024, Hashes: 2, MaxInserts: 192, TrackExact: true})
	for i := uint64(0); i < 192; i++ {
		s.Insert(i * 64)
	}
	fp := 0
	const probes = 10000
	for i := uint64(0); i < probes; i++ {
		if s.Test((i + 1_000_000) * 64) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.25 {
		t.Errorf("false positive rate %v too high at saturation", rate)
	}
}
