package signature

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := func(lines []uint64) bool {
		s := New(Config{Bits: 1024, Hashes: 2})
		for _, l := range lines {
			s.Insert(l)
		}
		for _, l := range lines {
			if !s.Test(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClearEmpties(t *testing.T) {
	s := New(DefaultConfig())
	for i := uint64(0); i < 50; i++ {
		s.Insert(i * 64)
	}
	if s.Inserts() != 50 {
		t.Errorf("Inserts = %d, want 50", s.Inserts())
	}
	s.Clear()
	if s.Inserts() != 0 {
		t.Errorf("Inserts after Clear = %d, want 0", s.Inserts())
	}
	if s.Occupancy() != 0 {
		t.Errorf("Occupancy after Clear = %v, want 0", s.Occupancy())
	}
	hits := 0
	for i := uint64(0); i < 50; i++ {
		if s.Test(i * 64) {
			hits++
		}
	}
	if hits != 0 {
		t.Errorf("%d stale hits after Clear", hits)
	}
}

func TestSaturation(t *testing.T) {
	s := New(Config{Bits: 4096, Hashes: 2, MaxInserts: 10})
	saturated := false
	for i := uint64(0); i < 10; i++ {
		saturated = s.Insert(i)
	}
	if !saturated {
		t.Error("expected saturation at 10th distinct insert")
	}
	if !s.Saturated() {
		t.Error("Saturated() = false after saturation")
	}
}

func TestDuplicateInsertsDoNotSaturate(t *testing.T) {
	s := New(Config{Bits: 4096, Hashes: 2, MaxInserts: 5, TrackExact: true})
	for i := 0; i < 100; i++ {
		if s.Insert(0xabc) {
			t.Fatal("duplicate inserts saturated the signature")
		}
	}
	if s.Inserts() != 1 {
		t.Errorf("Inserts = %d, want 1", s.Inserts())
	}
}

func TestDuplicateInsertsWithoutExactTracking(t *testing.T) {
	s := New(Config{Bits: 4096, Hashes: 2, MaxInserts: 5})
	for i := 0; i < 100; i++ {
		if s.Insert(0xabc) {
			t.Fatal("duplicate inserts saturated the signature")
		}
	}
	if s.Inserts() != 1 {
		t.Errorf("Inserts = %d, want 1 (bits already set => treated as present)", s.Inserts())
	}
}

func TestFalsePositiveAccounting(t *testing.T) {
	s := New(Config{Bits: 64, Hashes: 2, TrackExact: true})
	// Densely populate a tiny filter to force aliasing.
	for i := uint64(0); i < 30; i++ {
		s.Insert(i)
	}
	fp := 0
	for i := uint64(1000); i < 2000; i++ {
		if s.Test(i) {
			fp++
		}
	}
	tests, hits, falseHits := s.Stats()
	if tests < 1000 {
		t.Errorf("tests = %d, want >= 1000", tests)
	}
	if falseHits != uint64(fp) {
		t.Errorf("falseHits = %d, want %d", falseHits, fp)
	}
	if hits < falseHits {
		t.Errorf("hits %d < falseHits %d", hits, falseHits)
	}
	if fp == 0 {
		t.Error("expected some aliasing in a 64-bit filter with 30 lines")
	}
}

func TestOccupancyGrows(t *testing.T) {
	s := New(Config{Bits: 1024, Hashes: 2})
	prev := s.Occupancy()
	if prev != 0 {
		t.Fatalf("initial occupancy %v, want 0", prev)
	}
	for i := uint64(0); i < 100; i++ {
		s.Insert(mixProbe(i))
		occ := s.Occupancy()
		if occ < prev {
			t.Fatalf("occupancy decreased: %v -> %v", prev, occ)
		}
		prev = occ
	}
	if prev <= 0 || prev > 1 {
		t.Errorf("occupancy %v out of (0,1]", prev)
	}
}

func mixProbe(x uint64) uint64 { return mix64(x) }

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Bits: 0, Hashes: 2},
		{Bits: 100, Hashes: 2}, // not a power of two
		{Bits: 32, Hashes: 2},  // sub-word: no consistent word-array encoding
		{Bits: 1024, Hashes: 0},
		{Bits: 1024, Hashes: 9},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestConfigAccessor(t *testing.T) {
	cfg := Config{Bits: 2048, Hashes: 3, MaxInserts: 64}
	s := New(cfg)
	if got := s.Config(); got != cfg {
		t.Errorf("Config() = %+v, want %+v", got, cfg)
	}
}

// TestAliasingTable pins false-positive behaviour across filter
// geometries: false negatives never happen, and the alias rate on probes
// of never-inserted lines stays within the expected band for each
// configuration.
func TestAliasingTable(t *testing.T) {
	cases := []struct {
		name      string
		cfg       Config
		inserts   int
		maxFPRate float64 // upper bound on alias rate for foreign probes
		minFPRate float64 // lower bound (0 = aliasing not required)
	}{
		{"default-budget", Config{Bits: 1024, Hashes: 2, TrackExact: true}, 192, 0.25, 0},
		{"tiny-dense", Config{Bits: 64, Hashes: 2, TrackExact: true}, 30, 1.0, 0.05},
		{"large-sparse", Config{Bits: 8192, Hashes: 2, TrackExact: true}, 64, 0.02, 0},
		{"single-hash", Config{Bits: 1024, Hashes: 1, TrackExact: true}, 128, 0.20, 0.01},
		{"many-hash", Config{Bits: 4096, Hashes: 6, TrackExact: true}, 64, 0.05, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.cfg)
			for i := 0; i < tc.inserts; i++ {
				s.Insert(uint64(i) * 64)
			}
			// No false negatives, ever.
			for i := 0; i < tc.inserts; i++ {
				if !s.Test(uint64(i) * 64) {
					t.Fatalf("false negative on inserted line %d", i)
				}
			}
			const probes = 4000
			fp := 0
			for i := uint64(0); i < probes; i++ {
				if s.Test((i + 1_000_000) * 64) {
					fp++
				}
			}
			rate := float64(fp) / probes
			if rate > tc.maxFPRate {
				t.Errorf("alias rate %.4f above bound %.4f", rate, tc.maxFPRate)
			}
			if rate < tc.minFPRate {
				t.Errorf("alias rate %.4f below expected floor %.4f", rate, tc.minFPRate)
			}
			_, hits, falseHits := s.Stats()
			if falseHits != uint64(fp) {
				t.Errorf("falseHits = %d, want %d", falseHits, fp)
			}
			if hits < falseHits {
				t.Errorf("hits %d < falseHits %d", hits, falseHits)
			}
		})
	}
}

// TestIntersection pins the conflict-test semantics, in particular that
// the empty signature intersects nothing — including itself.
func TestIntersection(t *testing.T) {
	cfg := Config{Bits: 1024, Hashes: 2}
	build := func(lines ...uint64) *Signature {
		s := New(cfg)
		for _, l := range lines {
			s.Insert(l)
		}
		return s
	}
	cases := []struct {
		name string
		a, b *Signature
		want bool
	}{
		{"empty-vs-empty", build(), build(), false},
		{"empty-vs-populated", build(), build(1, 2, 3), false},
		{"populated-vs-empty", build(1, 2, 3), build(), false},
		{"shared-line", build(1, 2, 3), build(3, 9), true},
		{"disjoint-sparse", build(0x40, 0x80), build(0x1000, 0x2000), false},
		{"identical-sets", build(5, 6), build(5, 6), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Intersects(tc.b); got != tc.want {
				t.Errorf("Intersects = %v, want %v", got, tc.want)
			}
			// Intersection is symmetric.
			if got := tc.b.Intersects(tc.a); got != tc.want {
				t.Errorf("reverse Intersects = %v, want %v", got, tc.want)
			}
		})
	}
	if !build().Empty() {
		t.Error("fresh signature not Empty")
	}
	if build(1).Empty() {
		t.Error("populated signature reports Empty")
	}
	s := build(1)
	s.Clear()
	if !s.Empty() {
		t.Error("cleared signature not Empty")
	}
	// Geometry mismatch is a programming error and must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Intersects across geometries did not panic")
			}
		}()
		build().Intersects(New(Config{Bits: 2048, Hashes: 2}))
	}()
}

// TestSignatureSerializationRoundTrip pins Marshal/Unmarshal across
// geometries: the reloaded filter answers Test, Intersects, Saturated,
// Inserts and Occupancy identically.
func TestSignatureSerializationRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		inserts int
	}{
		{"empty", Config{Bits: 1024, Hashes: 2}, 0},
		{"default", Config{Bits: 1024, Hashes: 2, MaxInserts: 192}, 100},
		{"saturated", Config{Bits: 4096, Hashes: 2, MaxInserts: 16}, 16},
		{"one-word", Config{Bits: 64, Hashes: 1}, 8},
		{"two-word", Config{Bits: 128, Hashes: 2, MaxInserts: 12}, 10},
		{"many-hash", Config{Bits: 2048, Hashes: 8}, 50},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.cfg)
			for i := 0; i < tc.inserts; i++ {
				s.Insert(uint64(i) * 64)
			}
			got, err := Unmarshal(s.Marshal())
			if err != nil {
				t.Fatal(err)
			}
			if got.Config().Bits != tc.cfg.Bits || got.Config().Hashes != tc.cfg.Hashes ||
				got.Config().MaxInserts != tc.cfg.MaxInserts {
				t.Errorf("config %+v != original %+v", got.Config(), tc.cfg)
			}
			if got.Inserts() != s.Inserts() {
				t.Errorf("Inserts = %d, want %d", got.Inserts(), s.Inserts())
			}
			if got.Saturated() != s.Saturated() {
				t.Errorf("Saturated = %v, want %v", got.Saturated(), s.Saturated())
			}
			if got.Occupancy() != s.Occupancy() {
				t.Errorf("Occupancy = %v, want %v", got.Occupancy(), s.Occupancy())
			}
			for i := uint64(0); i < 4096; i++ {
				if got.testBits(i*64) != s.testBits(i*64) {
					t.Fatalf("Test(%d) differs after round trip", i*64)
				}
			}
			if s.Inserts() > 0 && !got.Intersects(s) {
				t.Error("round-tripped signature does not intersect its original")
			}
		})
	}
}

// TestSignatureUnmarshalRejectsCorruption feeds the parser truncations
// and corruptions; it must error, never panic.
func TestSignatureUnmarshalRejectsCorruption(t *testing.T) {
	s := New(Config{Bits: 1024, Hashes: 2, MaxInserts: 192})
	for i := uint64(0); i < 40; i++ {
		s.Insert(i * 64)
	}
	good := s.Marshal()
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil input accepted")
	}
	for cut := 0; cut < len(good); cut++ {
		if _, err := Unmarshal(good[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff // magic
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), good...)
	bad[4] = 99 // version
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad version accepted")
	}
	// Non-power-of-two Bits must be rejected, not panic New.
	bad = append([]byte(nil), good...)
	bad[5] = 0x63 // corrupt the Bits uvarint
	if sig, err := Unmarshal(bad); err == nil && sig.Config().Bits&(sig.Config().Bits-1) != 0 {
		t.Error("invalid geometry accepted")
	}
}

// TestSubWordBitsRejectedConsistently pins the New/Marshal agreement for
// sub-word geometries: New used to pad Bits < 64 up to one word while
// Marshal/Unmarshal sized the array from Bits/64 (zero words), so a
// serialized sub-word filter could not round-trip. Both paths now reject
// the configuration the same way.
func TestSubWordBitsRejectedConsistently(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(Bits: 32) did not panic")
			}
		}()
		New(Config{Bits: 32, Hashes: 2})
	}()

	// A hand-built serialized filter claiming Bits = 32 (a valid power of
	// two, but sub-word) must be rejected with an error, not materialized.
	blob := New(Config{Bits: 64, Hashes: 2}).Marshal()
	blob[5] = 32 // the Bits uvarint: single byte for values < 128
	if _, err := Unmarshal(blob); err == nil {
		t.Error("Unmarshal accepted a sub-word Bits claim")
	} else if !errors.Is(err, ErrCorruptSignature) {
		t.Errorf("sub-word rejection is %v, want ErrCorruptSignature", err)
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	// With the default 1024-bit / 2-hash / 192-line budget, the false hit
	// rate near saturation should stay below ~25%.
	s := New(Config{Bits: 1024, Hashes: 2, MaxInserts: 192, TrackExact: true})
	for i := uint64(0); i < 192; i++ {
		s.Insert(i * 64)
	}
	fp := 0
	const probes = 10000
	for i := uint64(0); i < probes; i++ {
		if s.Test((i + 1_000_000) * 64) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.25 {
		t.Errorf("false positive rate %v too high at saturation", rate)
	}
}
