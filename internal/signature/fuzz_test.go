package signature

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// FuzzSignatureUnmarshal feeds arbitrary bytes to the signature decoder.
// The decoder must never panic — in particular New must never be reached
// with a geometry it would reject — and accepted inputs must survive a
// byte-identical re-marshal round trip.
func FuzzSignatureUnmarshal(f *testing.F) {
	// Valid filters across geometries.
	for _, cfg := range []Config{
		{Bits: 64, Hashes: 1},
		{Bits: 128, Hashes: 2, MaxInserts: 12},
		{Bits: 1024, Hashes: 2, MaxInserts: 192},
	} {
		s := New(cfg)
		for i := uint64(0); i < 10; i++ {
			s.Insert(i * 64)
		}
		f.Add(s.Marshal())
	}
	good := New(DefaultConfig()).Marshal()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	f.Add(bad)

	// Truncated varint: cut inside the header's uvarint run.
	f.Add(good[:6])

	// Word-count lie: a header claiming 1024 bits followed by too few
	// payload words.
	la := wire.AppenderOf(make([]byte, 0, 16))
	la.Raw(sigMagic[:])
	la.Byte(sigVersion)
	la.Uvarint(1024)        // Bits
	la.Uvarint(2)           // Hashes
	la.Uvarint(192)         // MaxInserts
	la.Uvarint(3)           // inserts
	la.Raw(make([]byte, 8)) // one word where 16 are due
	f.Add(la.Buf)

	// Sub-word Bits claim (the New/Unmarshal agreement regression).
	sub := append([]byte(nil), good...)
	sub[5] = 32
	f.Add(sub)

	f.Add([]byte{})
	f.Add([]byte("QRSG"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Unmarshal(data)
		if err != nil {
			return
		}
		again := s.Marshal()
		reloaded, err := Unmarshal(again)
		if err != nil {
			t.Fatalf("re-decode of re-marshal failed: %v", err)
		}
		if !bytes.Equal(reloaded.Marshal(), again) {
			t.Fatal("re-marshal is not a fixed point")
		}
		if reloaded.Config() != s.Config() || reloaded.Inserts() != s.Inserts() {
			t.Fatalf("round trip changed filter state: %+v/%d vs %+v/%d",
				reloaded.Config(), reloaded.Inserts(), s.Config(), s.Inserts())
		}
	})
}
