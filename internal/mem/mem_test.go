package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLoadStore(t *testing.T) {
	m := New(1024)
	m.Store(0, 42)
	m.Store(8, 0xdeadbeef)
	m.Store(1016, ^uint64(0))
	if got := m.Load(0); got != 42 {
		t.Errorf("Load(0) = %d, want 42", got)
	}
	if got := m.Load(8); got != 0xdeadbeef {
		t.Errorf("Load(8) = %#x, want 0xdeadbeef", got)
	}
	if got := m.Load(1016); got != ^uint64(0) {
		t.Errorf("Load(1016) = %#x, want all-ones", got)
	}
	if got := m.Load(16); got != 0 {
		t.Errorf("untouched word = %d, want 0", got)
	}
}

func TestSizeRounding(t *testing.T) {
	m := New(9)
	if m.Size() != 16 {
		t.Errorf("Size = %d, want 16 (rounded to words)", m.Size())
	}
}

func TestUnalignedPanics(t *testing.T) {
	m := New(64)
	defer func() {
		if recover() == nil {
			t.Error("unaligned access did not panic")
		}
	}()
	m.Load(3)
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(64)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access did not panic")
		}
	}()
	m.Store(64, 1)
}

func TestValid(t *testing.T) {
	m := New(64)
	cases := []struct {
		addr uint64
		want bool
	}{
		{0, true}, {8, true}, {56, true}, {64, false}, {3, false}, {1 << 40, false},
	}
	for _, c := range cases {
		if got := m.Valid(c.addr); got != c.want {
			t.Errorf("Valid(%d) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	m := New(256)
	data := []byte("hello, quickrec world! 0123456789")
	m.StoreBytes(8, data)
	got := m.LoadBytes(8, uint64(len(data)))
	if !bytes.Equal(got, data) {
		t.Errorf("round trip: got %q, want %q", got, data)
	}
}

func TestStoreBytesPreservesNeighbours(t *testing.T) {
	m := New(64)
	m.Store(0, 0x1122334455667788)
	m.StoreBytes(0, []byte{0xaa, 0xbb}) // overwrite low two bytes only
	if got := m.Load(0); got != 0x112233445566bbaa {
		t.Errorf("Load = %#x, want 0x112233445566bbaa", got)
	}
}

func TestBytesProperty(t *testing.T) {
	f := func(data []byte, offWords uint8) bool {
		if len(data) > 512 {
			data = data[:512]
		}
		m := New(2048)
		addr := uint64(offWords%16) * WordSize
		m.StoreBytes(addr, data)
		return bytes.Equal(m.LoadBytes(addr, uint64(len(data))), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocSeparatesLines(t *testing.T) {
	m := New(4096)
	a := m.Alloc(1)
	b := m.Alloc(1)
	if a/64 == b/64 {
		t.Errorf("allocations share a cache line: %#x %#x", a, b)
	}
	if a%64 != 0 || b%64 != 0 {
		t.Errorf("allocations not line-aligned: %#x %#x", a, b)
	}
}

func TestAllocWords(t *testing.T) {
	m := New(4096)
	a := m.AllocWords(8) // exactly one line
	b := m.AllocWords(1)
	if b-a != 64 {
		t.Errorf("expected next line after 8-word alloc, got gap %d", b-a)
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	m := New(128)
	defer func() {
		if recover() == nil {
			t.Error("alloc beyond size did not panic")
		}
	}()
	m.Alloc(4096)
}

func TestChecksumDetectsChanges(t *testing.T) {
	m := New(1024)
	m.Store(64, 7)
	c1 := m.Checksum()
	m.Store(64, 8)
	c2 := m.Checksum()
	if c1 == c2 {
		t.Error("checksum unchanged after store")
	}
	m.Store(64, 7)
	if m.Checksum() != c1 {
		t.Error("checksum not restored with contents")
	}
}

func TestSnapshotAndEqual(t *testing.T) {
	m := New(512)
	m.Alloc(100)
	m.Store(0, 1)
	m.Store(128, 99)
	snap := m.Snapshot()
	if !m.Equal(snap) {
		t.Fatal("snapshot differs from original")
	}
	if snap.Brk() != m.Brk() {
		t.Errorf("snapshot brk = %d, want %d", snap.Brk(), m.Brk())
	}
	m.Store(0, 2)
	if m.Equal(snap) {
		t.Error("snapshot tracked mutation of original")
	}
	if snap.Load(0) != 1 {
		t.Error("snapshot contents changed")
	}
	other := New(256)
	if m.Equal(other) {
		t.Error("memories of different sizes reported equal")
	}
}
