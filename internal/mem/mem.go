// Package mem implements the simulated physical memory that backs the
// QuickRec machine model. Memory is byte-addressable but accessed in
// aligned 64-bit words, matching the data-path granularity of the
// simulated cores. It also provides a trivial bump allocator used by
// workloads to lay out shared data segments, and whole-image
// checksumming used by the replayer to validate determinism.
package mem

import (
	"fmt"
	"hash/fnv"
)

// WordSize is the access granularity in bytes.
const WordSize = 8

// Memory is a flat, word-aligned physical memory image.
// It is not safe for concurrent use; the simulated machine serializes
// all accesses through the bus model.
type Memory struct {
	words []uint64
	brk   uint64 // bump-allocator frontier (byte address)
}

// New returns a memory of the given size in bytes. Size is rounded up to
// a multiple of the word size.
func New(size uint64) *Memory {
	nwords := (size + WordSize - 1) / WordSize
	return &Memory{words: make([]uint64, nwords)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.words)) * WordSize }

func (m *Memory) index(addr uint64) uint64 {
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("mem: unaligned access at %#x", addr))
	}
	idx := addr / WordSize
	if idx >= uint64(len(m.words)) {
		panic(fmt.Sprintf("mem: access at %#x beyond size %#x", addr, m.Size()))
	}
	return idx
}

// Valid reports whether addr is an aligned address inside the memory.
func (m *Memory) Valid(addr uint64) bool {
	return addr%WordSize == 0 && addr/WordSize < uint64(len(m.words))
}

// Load reads the aligned 64-bit word at addr.
func (m *Memory) Load(addr uint64) uint64 { return m.words[m.index(addr)] }

// Store writes the aligned 64-bit word at addr.
func (m *Memory) Store(addr uint64, v uint64) { m.words[m.index(addr)] = v }

// LoadBytes copies n bytes starting at the aligned address addr into a new
// slice. n need not be word-aligned; the tail of the final word is
// truncated. Used by the kernel model for write(2)-style syscalls.
func (m *Memory) LoadBytes(addr, n uint64) []byte {
	out := make([]byte, 0, n)
	for off := uint64(0); off < n; off += WordSize {
		w := m.Load(addr + off)
		for b := uint64(0); b < WordSize && off+b < n; b++ {
			out = append(out, byte(w>>(8*b)))
		}
	}
	return out
}

// StoreBytes writes p starting at the aligned address addr. Partial final
// words are read-modify-written so neighbouring bytes are preserved.
// Used by the kernel model for read(2)-style copy_to_user.
func (m *Memory) StoreBytes(addr uint64, p []byte) {
	for off := 0; off < len(p); off += WordSize {
		wordAddr := addr + uint64(off)
		w := m.Load(wordAddr)
		for b := 0; b < WordSize && off+b < len(p); b++ {
			shift := uint(8 * b)
			w &^= uint64(0xff) << shift
			w |= uint64(p[off+b]) << shift
		}
		m.Store(wordAddr, w)
	}
}

// Alloc reserves n bytes (rounded up to a whole number of cache-line-sized
// 64-byte blocks so distinct allocations never share a line unless asked)
// and returns the base address. Allocation never fails until memory is
// exhausted, in which case it panics: workloads size their own footprints.
func (m *Memory) Alloc(n uint64) uint64 {
	const lineSize = 64
	base := (m.brk + lineSize - 1) &^ (lineSize - 1)
	end := base + ((n+lineSize-1)&^(lineSize - 1))
	if end > m.Size() {
		panic(fmt.Sprintf("mem: out of memory allocating %d bytes (brk %#x, size %#x)", n, m.brk, m.Size()))
	}
	m.brk = end
	return base
}

// AllocWords reserves n 64-bit words and returns the base address.
func (m *Memory) AllocWords(n uint64) uint64 { return m.Alloc(n * WordSize) }

// Brk returns the current allocation frontier.
func (m *Memory) Brk() uint64 { return m.brk }

// Reserve advances the allocation frontier to at least n bytes, marking
// the region [0, n) as owned by a build-time Layout so later Allocs
// (per-thread stacks, for example) don't overlap it.
func (m *Memory) Reserve(n uint64) {
	if n > m.Size() {
		panic(fmt.Sprintf("mem: reserving %d bytes beyond size %d", n, m.Size()))
	}
	if n > m.brk {
		m.brk = n
	}
}

// Layout plans data-segment addresses at program-build time, before any
// Memory exists, using the same cache-line-granular bump allocation as
// Memory.Alloc. Programs compute their symbol addresses with a Layout,
// embed them as immediates, and reserve Size() bytes at run time.
type Layout struct {
	brk uint64
}

// Alloc reserves n bytes (line-granular) and returns the base address.
func (l *Layout) Alloc(n uint64) uint64 {
	const lineSize = 64
	base := (l.brk + lineSize - 1) &^ (lineSize - 1)
	l.brk = base + ((n+lineSize-1)&^(lineSize - 1))
	return base
}

// AllocWords reserves n 64-bit words.
func (l *Layout) AllocWords(n uint64) uint64 { return l.Alloc(n * WordSize) }

// Size returns the total bytes the layout spans.
func (l *Layout) Size() uint64 { return l.brk }

// Checksum returns an FNV-1a hash over the full memory image. Two memories
// with identical contents produce identical checksums; the replayer uses
// this to validate that replay converged to the recorded final state.
func (m *Memory) Checksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, w := range m.words {
		buf[0] = byte(w)
		buf[1] = byte(w >> 8)
		buf[2] = byte(w >> 16)
		buf[3] = byte(w >> 24)
		buf[4] = byte(w >> 32)
		buf[5] = byte(w >> 40)
		buf[6] = byte(w >> 48)
		buf[7] = byte(w >> 56)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Snapshot returns a deep copy of the memory image (including the
// allocator frontier).
func (m *Memory) Snapshot() *Memory {
	cp := &Memory{words: make([]uint64, len(m.words)), brk: m.brk}
	copy(cp.words, m.words)
	return cp
}

// Equal reports whether two memories hold identical contents.
func (m *Memory) Equal(other *Memory) bool {
	if len(m.words) != len(other.words) {
		return false
	}
	for i, w := range m.words {
		if other.words[i] != w {
			return false
		}
	}
	return true
}
