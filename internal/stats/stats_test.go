package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatalf("zero histogram not empty: %v", h.String())
	}
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1000} {
		h.Add(v)
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Errorf("Min/Max = %d/%d, want 0/1000", h.Min(), h.Max())
	}
	if h.Sum() != 1110 {
		t.Errorf("Sum = %d, want 1110", h.Sum())
	}
	want := 1110.0 / 7
	if math.Abs(h.Mean()-want) > 1e-9 {
		t.Errorf("Mean = %v, want %v", h.Mean(), want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// 0 and 1 land in bucket 0; 2 in bucket 1; 3,4 in bucket 2; 5..8 in 3.
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 8} {
		h.Add(v)
	}
	if got := h.Bucket(0); got != 2 {
		t.Errorf("bucket 0 = %d, want 2", got)
	}
	if got := h.Bucket(1); got != 1 {
		t.Errorf("bucket 1 = %d, want 1", got)
	}
	if got := h.Bucket(2); got != 2 {
		t.Errorf("bucket 2 = %d, want 2", got)
	}
	if got := h.Bucket(3); got != 2 {
		t.Errorf("bucket 3 = %d, want 2", got)
	}
	if got := h.Bucket(-1); got != 0 {
		t.Errorf("out-of-range bucket = %d, want 0", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Add(i)
	}
	// Quantile returns a power-of-two upper bound; p50 of 1..1000 is 500,
	// so the bound must be 512 and at least cover the true value.
	if q := h.Quantile(0.5); q != 512 {
		t.Errorf("p50 bound = %d, want 512", q)
	}
	if q := h.Quantile(1.0); q < 1000 {
		t.Errorf("p100 bound = %d, want >= 1000", q)
	}
	if q := h.Quantile(0.0); q == 0 {
		t.Errorf("p0 bound = 0, want >= 1")
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(vals []uint64) bool {
		var h Histogram
		for _, v := range vals {
			h.Add(v % 1_000_000)
		}
		prev := uint64(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	for i := 1; i <= 100; i++ {
		s.AddUint(uint64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Max(); got != 100 {
		t.Errorf("Max = %v, want 100", got)
	}
	if got := s.Mean(); got != 50.5 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
}

func TestSampleCDF(t *testing.T) {
	var s Sample
	for i := 1; i <= 1000; i++ {
		s.AddUint(uint64(i))
	}
	cdf := s.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("len(CDF) = %d, want 10", len(cdf))
	}
	if last := cdf[len(cdf)-1]; last.Fraction != 1 || last.Value != 1000 {
		t.Errorf("final point = %+v, want {1000 1}", last)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Errorf("CDF not monotone at %d: %+v -> %+v", i, cdf[i-1], cdf[i])
		}
	}
	if s.CDF(0) != nil {
		t.Error("CDF(0) should be nil")
	}
	var empty Sample
	if empty.CDF(5) != nil {
		t.Error("CDF of empty sample should be nil")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %v, want 4", g)
	}
	if g := GeoMean([]float64{0, -1}); g != 0 {
		t.Errorf("GeoMean of nonpositives = %v, want 0", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", g)
	}
	// Zeros are skipped, not counted.
	if g := GeoMean([]float64{0, 4}); math.Abs(g-4) > 1e-9 {
		t.Errorf("GeoMean(0,4) = %v, want 4", g)
	}
}

func TestMean(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v, want 0", m)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean(1,2,3) = %v, want 2", m)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc(3)
	c.Inc(3)
	c.Inc(1)
	c.Addn(7, 5)
	if c.Total() != 8 {
		t.Errorf("Total = %d, want 8", c.Total())
	}
	if c.Get(3) != 2 || c.Get(1) != 1 || c.Get(7) != 5 || c.Get(99) != 0 {
		t.Errorf("unexpected counts: %v %v %v %v", c.Get(3), c.Get(1), c.Get(7), c.Get(99))
	}
	if f := c.Fraction(7); math.Abs(f-5.0/8.0) > 1e-9 {
		t.Errorf("Fraction(7) = %v, want 0.625", f)
	}
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 3 || keys[2] != 7 {
		t.Errorf("Keys = %v, want [1 3 7]", keys)
	}

	var d Counter
	d.Inc(3)
	d.Merge(&c)
	if d.Get(3) != 3 || d.Total() != 9 {
		t.Errorf("after merge: Get(3)=%d Total=%d, want 3, 9", d.Get(3), d.Total())
	}

	var empty Counter
	if empty.Fraction(0) != 0 {
		t.Error("Fraction on empty counter should be 0")
	}
}

func TestBucketForProperty(t *testing.T) {
	f := func(v uint64) bool {
		b := bucketFor(v)
		if b < 0 || b > 64 {
			return false
		}
		// v must be <= 2^b, and > 2^(b-1) for b >= 1 (except bucket 0).
		if b == 0 {
			return v <= 1
		}
		upper := float64(math.Pow(2, float64(b)))
		lower := float64(math.Pow(2, float64(b-1)))
		return float64(v) <= upper && float64(v) > lower
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
