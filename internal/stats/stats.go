// Package stats provides small statistical containers used by the
// recording hardware models and the benchmark harness: histograms with
// power-of-two buckets, exact-sample CDFs, counters keyed by enum, and
// aggregate helpers (mean, geometric mean, percentiles).
//
// All containers are deterministic and allocation-light so they can be
// embedded in simulated hardware without perturbing measurements.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts uint64 samples in power-of-two buckets. Bucket i holds
// samples v with 2^(i-1) < v <= 2^i (bucket 0 holds v == 0 and v == 1).
// The zero value is ready to use.
type Histogram struct {
	buckets [65]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketFor(v)]++
}

func bucketFor(v uint64) int {
	if v <= 1 {
		return 0
	}
	b := 64 - leadingZeros(v-1)
	return b
}

func leadingZeros(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean of the samples, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Bucket returns the count in power-of-two bucket i (0..64).
func (h *Histogram) Bucket(i int) uint64 {
	if i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i]
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) derived
// from the bucket boundaries. It is exact to within a factor of two.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return 1
			}
			return 1 << uint(i)
		}
	}
	return h.max
}

// String summarises the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f min=%d p50<=%d p90<=%d p99<=%d max=%d",
		h.count, h.Mean(), h.min, h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.max)
}

// Sample keeps every observation for exact quantiles and CDF extraction.
// Intended for offline analysis in the bench harness, not hot paths.
type Sample struct {
	vals   []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// AddUint records one integer observation.
func (s *Sample) AddUint(v uint64) { s.Add(float64(v)) }

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.vals) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0..100) using nearest-rank.
// It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	rank := int(math.Ceil(p / 100 * float64(len(s.vals))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s.vals) {
		rank = len(s.vals)
	}
	return s.vals[rank-1]
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[len(s.vals)-1]
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64 // observation value
	Fraction float64 // fraction of observations <= Value
}

// CDF returns an empirical CDF reduced to at most n points, evenly spaced
// by cumulative fraction. The last point always has Fraction == 1.
func (s *Sample) CDF(n int) []CDFPoint {
	if len(s.vals) == 0 || n <= 0 {
		return nil
	}
	s.ensureSorted()
	if n > len(s.vals) {
		n = len(s.vals)
	}
	out := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		idx := i*len(s.vals)/n - 1
		out = append(out, CDFPoint{
			Value:    s.vals[idx],
			Fraction: float64(idx+1) / float64(len(s.vals)),
		})
	}
	return out
}

// GeoMean returns the geometric mean of xs; zero and negative values are
// skipped. Returns 0 when no positive values exist.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Counter tallies occurrences keyed by a small integer enum (for example
// chunk-termination reasons). The zero value is ready to use.
type Counter struct {
	counts map[int]uint64
	total  uint64
}

// Inc adds one occurrence of key.
func (c *Counter) Inc(key int) { c.Addn(key, 1) }

// Addn adds n occurrences of key.
func (c *Counter) Addn(key int, n uint64) {
	if c.counts == nil {
		c.counts = make(map[int]uint64)
	}
	c.counts[key] += n
	c.total += n
}

// Get returns the count for key.
func (c *Counter) Get(key int) uint64 { return c.counts[key] }

// Total returns the sum over all keys.
func (c *Counter) Total() uint64 { return c.total }

// Fraction returns the share of occurrences held by key (0 when empty).
func (c *Counter) Fraction(key int) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[key]) / float64(c.total)
}

// Keys returns the recorded keys in ascending order.
func (c *Counter) Keys() []int {
	keys := make([]int, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Merge adds all counts from other into c.
func (c *Counter) Merge(other *Counter) {
	for k, v := range other.counts {
		c.Addn(k, v)
	}
}
